// Package hess implements a Hybrid Energy Storage System — a battery pack
// paired with an ultracapacitor bank and a power-split policy. The paper's
// introduction positions HESS (Park, Kim & Chang, DAC'13 [3]) as the BMS
// evolution this work complements: where a HESS shaves motor-power peaks
// with hardware, the paper's controller shaves them by scheduling the
// HVAC. This package provides the hardware alternative so the two
// approaches (and their combination) can be compared on the same traces.
package hess

import (
	"errors"
	"fmt"
	"math"
)

// UltracapParams defines an ultracapacitor bank.
type UltracapParams struct {
	// CapacitanceF is the bank capacitance in farads.
	CapacitanceF float64
	// MaxVoltageV and MinVoltageV bound the operating window; usable
	// energy is ½C(Vmax² − Vmin²).
	MaxVoltageV, MinVoltageV float64
	// ESROhm is the equivalent series resistance.
	ESROhm float64
	// MaxCurrentA limits charge/discharge current.
	MaxCurrentA float64
}

// DefaultUltracap returns a 63 F / 125 V heavy-transport module pair
// (≈ 0.24 kWh usable, ≈ 120 kg) — the class of bank [3] sizes for an EV.
func DefaultUltracap() UltracapParams {
	return UltracapParams{
		CapacitanceF: 63,
		MaxVoltageV:  125,
		MinVoltageV:  62.5,
		ESROhm:       0.018,
		MaxCurrentA:  750,
	}
}

// Validate reports invalid parameters.
func (p *UltracapParams) Validate() error {
	switch {
	case p.CapacitanceF <= 0:
		return errors.New("hess: capacitance must be positive")
	case p.MaxVoltageV <= p.MinVoltageV || p.MinVoltageV < 0:
		return fmt.Errorf("hess: voltage window [%v, %v] invalid", p.MinVoltageV, p.MaxVoltageV)
	case p.ESROhm < 0:
		return errors.New("hess: ESR must be nonnegative")
	case p.MaxCurrentA <= 0:
		return errors.New("hess: current limit must be positive")
	}
	return nil
}

// UsableEnergyJ returns ½C(Vmax² − Vmin²).
func (p UltracapParams) UsableEnergyJ() float64 {
	return 0.5 * p.CapacitanceF * (p.MaxVoltageV*p.MaxVoltageV - p.MinVoltageV*p.MinVoltageV)
}

// Ultracap tracks one bank's state.
type Ultracap struct {
	p UltracapParams
	v float64 // terminal open-circuit voltage
}

// NewUltracap starts the bank at the given state of charge (fraction of
// usable energy, in [0, 1]).
func NewUltracap(p UltracapParams, socFrac float64) (*Ultracap, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if socFrac < 0 || socFrac > 1 {
		return nil, fmt.Errorf("hess: ultracap SoC %v outside [0, 1]", socFrac)
	}
	e := 0.5*p.CapacitanceF*p.MinVoltageV*p.MinVoltageV + socFrac*p.UsableEnergyJ()
	return &Ultracap{p: p, v: math.Sqrt(2 * e / p.CapacitanceF)}, nil
}

// Voltage returns the current open-circuit voltage.
func (u *Ultracap) Voltage() float64 { return u.v }

// SoCFrac returns the usable-energy fraction in [0, 1].
func (u *Ultracap) SoCFrac() float64 {
	e := 0.5 * u.p.CapacitanceF * u.v * u.v
	eMin := 0.5 * u.p.CapacitanceF * u.p.MinVoltageV * u.p.MinVoltageV
	return (e - eMin) / u.p.UsableEnergyJ()
}

// MaxDischargeW returns the power the bank can source right now
// (limited by current and remaining energy).
func (u *Ultracap) MaxDischargeW(dt float64) float64 {
	if u.v <= u.p.MinVoltageV {
		return 0
	}
	pCurrent := u.v * u.p.MaxCurrentA
	// Energy above the floor, deliverable within dt.
	eAvail := 0.5 * u.p.CapacitanceF * (u.v*u.v - u.p.MinVoltageV*u.p.MinVoltageV)
	return math.Min(pCurrent, eAvail/dt)
}

// MaxChargeW returns the power the bank can absorb right now.
func (u *Ultracap) MaxChargeW(dt float64) float64 {
	if u.v >= u.p.MaxVoltageV {
		return 0
	}
	pCurrent := u.v * u.p.MaxCurrentA
	eRoom := 0.5 * u.p.CapacitanceF * (u.p.MaxVoltageV*u.p.MaxVoltageV - u.v*u.v)
	return math.Min(pCurrent, eRoom/dt)
}

// Step applies powerW (positive = discharge) for dt seconds, clipping to
// the feasible window, and returns the power actually exchanged. ESR
// losses are charged against the stored energy.
func (u *Ultracap) Step(powerW, dt float64) float64 {
	if powerW > 0 {
		powerW = math.Min(powerW, u.MaxDischargeW(dt))
	} else {
		powerW = -math.Min(-powerW, u.MaxChargeW(dt))
	}
	if powerW == 0 {
		return 0
	}
	i := powerW / u.v
	loss := i * i * u.p.ESROhm
	e := 0.5*u.p.CapacitanceF*u.v*u.v - (powerW+loss)*dt
	eMin := 0.5 * u.p.CapacitanceF * u.p.MinVoltageV * u.p.MinVoltageV
	eMax := 0.5 * u.p.CapacitanceF * u.p.MaxVoltageV * u.p.MaxVoltageV
	if e < eMin {
		e = eMin
	}
	if e > eMax {
		e = eMax
	}
	u.v = math.Sqrt(2 * e / u.p.CapacitanceF)
	return powerW
}

// Splitter decides how much of a power request the ultracapacitor takes.
type Splitter interface {
	// Split returns the power the ultracap should handle for a total
	// request (positive = discharge). The system clips it to feasibility.
	Split(requestW float64, uc *Ultracap, dt float64) float64
	// Name identifies the policy.
	Name() string
}

// ThresholdSplit sends everything above ThresholdW (and all regeneration)
// to the ultracapacitor — the classic peak-shaving rule.
type ThresholdSplit struct {
	// ThresholdW is the battery's preferred ceiling.
	ThresholdW float64
}

// Name implements Splitter.
func (s *ThresholdSplit) Name() string { return "threshold" }

// Split implements Splitter.
func (s *ThresholdSplit) Split(requestW float64, uc *Ultracap, dt float64) float64 {
	if requestW > s.ThresholdW {
		return requestW - s.ThresholdW
	}
	if requestW < 0 {
		return requestW // capture all regen
	}
	// Below threshold: trickle-recharge the cap from the battery when low.
	if uc.SoCFrac() < 0.5 {
		return -math.Min(2000, s.ThresholdW-requestW)
	}
	return 0
}

// FilterSplit low-passes the demand: the battery follows the filtered
// signal, the ultracap supplies the high-frequency residual.
type FilterSplit struct {
	// TauS is the filter time constant in seconds (default 20).
	TauS float64

	filtered float64
	primed   bool
}

// Name implements Splitter.
func (s *FilterSplit) Name() string { return "low-pass" }

// Split implements Splitter.
func (s *FilterSplit) Split(requestW float64, uc *Ultracap, dt float64) float64 {
	tau := s.TauS
	if tau <= 0 {
		tau = 20
	}
	if !s.primed {
		s.filtered = requestW
		s.primed = true
	}
	alpha := dt / (tau + dt)
	s.filtered += alpha * (requestW - s.filtered)
	// SoC feedback: bias the battery share to recentre the cap at 50 %.
	bias := (0.5 - uc.SoCFrac()) * 3000
	return requestW - s.filtered - bias
}

// System is a battery-plus-ultracap storage front end. It does not model
// the battery internally — it returns the battery-side power so the
// caller's BMS (internal/bms) can account for it.
type System struct {
	uc       *Ultracap
	splitter Splitter
	// accounting
	ucDischargeJ, ucChargeJ float64
}

// NewSystem assembles a HESS front end.
func NewSystem(p UltracapParams, initialSoC float64, s Splitter) (*System, error) {
	if s == nil {
		return nil, errors.New("hess: nil splitter")
	}
	uc, err := NewUltracap(p, initialSoC)
	if err != nil {
		return nil, err
	}
	return &System{uc: uc, splitter: s}, nil
}

// Ultracap exposes the bank state.
func (h *System) Ultracap() *Ultracap { return h.uc }

// Step routes a total power request (positive = discharge) through the
// splitter and returns the battery-side power after the ultracap takes
// its feasible share.
func (h *System) Step(requestW, dt float64) (batteryW float64) {
	want := h.splitter.Split(requestW, h.uc, dt)
	got := h.uc.Step(want, dt)
	if got > 0 {
		h.ucDischargeJ += got * dt
	} else {
		h.ucChargeJ += -got * dt
	}
	return requestW - got
}

// UltracapThroughputKWh returns gross (discharge, charge) energy handled
// by the bank.
func (h *System) UltracapThroughputKWh() (discharge, charge float64) {
	return h.ucDischargeJ / 3.6e6, h.ucChargeJ / 3.6e6
}
