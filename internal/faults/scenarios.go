package faults

import (
	"fmt"
	"sort"
	"strings"
)

// Built-in fault scenarios: the canonical broken-sensing regimes the
// conformance suite and `evbench -exp faults` sweep every controller
// through. Windows are phrased as fractions of a nominal 600 s run so the
// scenarios stress both the transient and the settled phase on the
// truncated test cycles.

// Builtin returns the named scenario. Names are case-insensitive.
func Builtin(name string) (Spec, error) {
	for _, s := range Builtins() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("faults: unknown scenario %q (have %s)", name, strings.Join(BuiltinNames(), ", "))
}

// BuiltinNames lists the built-in scenario names, sorted.
func BuiltinNames() []string {
	bs := Builtins()
	names := make([]string, len(bs))
	for i, s := range bs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// Builtins returns the built-in scenario set.
func Builtins() []Spec {
	return []Spec{
		{
			// The cabin sensor bus freezes for two minutes mid-run, then
			// recovers; the ambient sensor drops intermittently.
			Name: "dropout",
			Sensor: []SensorFault{
				{Signal: CabinTemp, Mode: Dropout, Window: Window{StartS: 180, EndS: 300}},
				{Signal: OutsideTemp, Mode: Dropout, Rate: 0.5, Window: Window{StartS: 120, EndS: 420}},
			},
		},
		{
			// The cabin sensor sticks at a plausible-but-wrong reading —
			// the nastiest sensor failure, because nothing looks broken.
			Name: "stuck",
			Sensor: []SensorFault{
				{Signal: CabinTemp, Mode: StuckAt, Value: 24, Window: Window{StartS: 200, EndS: 320}},
			},
		},
		{
			// Measurement-quality degradation: biased ambient, noisy and
			// coarsely quantized cabin reading, noisy SoC telemetry.
			Name: "noisy",
			Sensor: []SensorFault{
				{Signal: OutsideTemp, Mode: Bias, Value: 4, Window: Window{StartS: 60, EndS: 480}},
				{Signal: CabinTemp, Mode: Noise, Value: 0.4, Window: Window{StartS: 60, EndS: 480}},
				{Signal: CabinTemp, Mode: Quantize, Value: 0.5, Window: Window{StartS: 60, EndS: 480}},
				{Signal: SoC, Mode: Noise, Value: 0.05, Window: Window{StartS: 60, EndS: 480}},
			},
		},
		{
			// The preview chain degrades: corrupted motor-power prediction,
			// then a truncated horizon, then total loss of the preview.
			Name: "forecast",
			Forecast: []ForecastFault{
				{Mode: ForecastCorrupt, SigmaW: 8000, Window: Window{StartS: 60, EndS: 240}},
				{Mode: ForecastTruncate, Keep: 3, Window: Window{StartS: 240, EndS: 360}},
				{Mode: ForecastLoss, Window: Window{StartS: 360, EndS: 480}},
			},
		},
		{
			// The ECU is overloaded: the optimizer gets a near-zero
			// iteration budget for two minutes.
			Name: "solver-budget",
			Solver: []SolverFault{
				{MaxIter: 1, Window: Window{StartS: 150, EndS: 270}},
			},
		},
	}
}
