package faults

import (
	"math"
	"testing"

	"evclimate/internal/control"
)

// mkCtx builds a clean step context at time t with a 3-step preview.
func mkCtx(step int, dt float64) control.StepContext {
	t := float64(step) * dt
	return control.StepContext{
		Time: t, Dt: dt,
		CabinTempC: 24 + 0.1*float64(step),
		OutsideC:   35,
		SoC:        90 - 0.01*float64(step),
		TargetC:    24,
		Forecast: control.Forecast{
			Dt:          dt,
			MotorPowerW: []float64{1000, 2000, 3000},
			OutsideC:    []float64{35, 35, 35},
			SolarW:      []float64{400, 400, 400},
		},
	}
}

func TestReplayBitIdentical(t *testing.T) {
	spec := Spec{
		Name: "mix",
		Sensor: []SensorFault{
			{Signal: CabinTemp, Mode: Noise, Value: 0.5, Window: Window{StartS: 2, EndS: 50}},
			{Signal: OutsideTemp, Mode: Dropout, Rate: 0.4, Window: Window{StartS: 5, EndS: 60}},
			{Signal: SoC, Mode: Quantize, Value: 1, Window: Window{StartS: 0, EndS: 100}},
		},
		Forecast: []ForecastFault{{Mode: ForecastCorrupt, SigmaW: 500, Window: Window{StartS: 10, EndS: 80}}},
		Solver:   []SolverFault{{MaxIter: 2, Window: Window{StartS: 20, EndS: 40}}},
	}
	run := func() []control.StepContext {
		inj := spec.New(42)
		out := make([]control.StepContext, 100)
		for k := 0; k < 100; k++ {
			ctx := mkCtx(k, 1)
			inj.Apply(k, &ctx)
			out[k] = ctx
		}
		return out
	}
	a, b := run(), run()
	for k := range a {
		if a[k].CabinTempC != b[k].CabinTempC || a[k].OutsideC != b[k].OutsideC ||
			a[k].SoC != b[k].SoC || a[k].SolverIterBudget != b[k].SolverIterBudget {
			t.Fatalf("step %d: replay diverged: %+v vs %+v", k, a[k], b[k])
		}
		for i := range a[k].Forecast.MotorPowerW {
			if a[k].Forecast.MotorPowerW[i] != b[k].Forecast.MotorPowerW[i] {
				t.Fatalf("step %d: forecast replay diverged", k)
			}
		}
	}

	// A different seed must produce a different noise sequence.
	inj := spec.New(43)
	diff := false
	for k := 0; k < 100; k++ {
		ctx := mkCtx(k, 1)
		inj.Apply(k, &ctx)
		if ctx.CabinTempC != a[k].CabinTempC {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical noise")
	}
}

func TestSensorModes(t *testing.T) {
	t.Run("stuck-at", func(t *testing.T) {
		inj := Spec{Sensor: []SensorFault{{Signal: CabinTemp, Mode: StuckAt, Value: 10, Window: Window{StartS: 2, EndS: 4}}}}.New(1)
		for k := 0; k < 6; k++ {
			ctx := mkCtx(k, 1)
			true_ := ctx.CabinTempC
			inj.Apply(k, &ctx)
			if k >= 2 && k < 4 {
				if ctx.CabinTempC != 10 {
					t.Fatalf("step %d: got %v, want stuck 10", k, ctx.CabinTempC)
				}
			} else if ctx.CabinTempC != true_ {
				t.Fatalf("step %d: fault active outside window", k)
			}
		}
	})

	t.Run("bias", func(t *testing.T) {
		inj := Spec{Sensor: []SensorFault{{Signal: OutsideTemp, Mode: Bias, Value: -3}}}.New(1)
		ctx := mkCtx(0, 1)
		inj.Apply(0, &ctx)
		if ctx.OutsideC != 32 {
			t.Fatalf("bias: got %v, want 32", ctx.OutsideC)
		}
	})

	t.Run("quantize", func(t *testing.T) {
		inj := Spec{Sensor: []SensorFault{{Signal: CabinTemp, Mode: Quantize, Value: 0.5}}}.New(1)
		ctx := mkCtx(1, 1) // cabin 24.1
		inj.Apply(1, &ctx)
		if ctx.CabinTempC != 24.0 {
			t.Fatalf("quantize: got %v, want 24.0", ctx.CabinTempC)
		}
	})

	t.Run("dropout-holds-last", func(t *testing.T) {
		inj := Spec{Sensor: []SensorFault{{Signal: CabinTemp, Mode: Dropout, Window: Window{StartS: 3, EndS: 6}}}}.New(1)
		var lastGood float64
		for k := 0; k < 8; k++ {
			ctx := mkCtx(k, 1)
			true_ := ctx.CabinTempC
			inj.Apply(k, &ctx)
			switch {
			case k < 3:
				lastGood = true_
				if ctx.CabinTempC != true_ {
					t.Fatalf("step %d: corrupted before window", k)
				}
			case k < 6:
				if ctx.CabinTempC != lastGood {
					t.Fatalf("step %d: got %v, want held %v", k, ctx.CabinTempC, lastGood)
				}
			default:
				if ctx.CabinTempC != true_ {
					t.Fatalf("step %d: still holding after window", k)
				}
			}
		}
	})

	t.Run("noise-is-zero-mean", func(t *testing.T) {
		inj := Spec{Sensor: []SensorFault{{Signal: CabinTemp, Mode: Noise, Value: 1}}}.New(7)
		var sum, sumSq float64
		n := 5000
		for k := 0; k < n; k++ {
			ctx := mkCtx(0, 1)
			inj.Apply(k, &ctx)
			d := ctx.CabinTempC - 24
			sum += d
			sumSq += d * d
		}
		mean := sum / float64(n)
		sd := math.Sqrt(sumSq/float64(n) - mean*mean)
		if math.Abs(mean) > 0.05 || math.Abs(sd-1) > 0.05 {
			t.Fatalf("noise stats off: mean %v, sd %v", mean, sd)
		}
	})
}

func TestForecastModes(t *testing.T) {
	t.Run("loss", func(t *testing.T) {
		inj := Spec{Forecast: []ForecastFault{{Mode: ForecastLoss}}}.New(1)
		ctx := mkCtx(0, 1)
		inj.Apply(0, &ctx)
		if ctx.Forecast.Len() != 0 {
			t.Fatalf("forecast not removed: %d steps", ctx.Forecast.Len())
		}
	})
	t.Run("truncate", func(t *testing.T) {
		inj := Spec{Forecast: []ForecastFault{{Mode: ForecastTruncate, Keep: 1}}}.New(1)
		ctx := mkCtx(0, 1)
		inj.Apply(0, &ctx)
		if ctx.Forecast.Len() != 1 || len(ctx.Forecast.OutsideC) != 1 || len(ctx.Forecast.SolarW) != 1 {
			t.Fatalf("truncate: got %d motor / %d outside / %d solar steps",
				ctx.Forecast.Len(), len(ctx.Forecast.OutsideC), len(ctx.Forecast.SolarW))
		}
	})
	t.Run("corrupt-copies", func(t *testing.T) {
		inj := Spec{Forecast: []ForecastFault{{Mode: ForecastCorrupt, SigmaW: 100}}}.New(1)
		orig := []float64{1000, 2000, 3000}
		ctx := mkCtx(0, 1)
		ctx.Forecast.MotorPowerW = orig
		inj.Apply(0, &ctx)
		if &ctx.Forecast.MotorPowerW[0] == &orig[0] {
			t.Fatal("corrupt mutated the shared preview slice")
		}
		same := true
		for i, v := range ctx.Forecast.MotorPowerW {
			if v != orig[i] {
				same = false
			}
		}
		if same {
			t.Fatal("corrupt changed nothing")
		}
	})
}

func TestSolverBudgetTightestWins(t *testing.T) {
	inj := Spec{Solver: []SolverFault{
		{MaxIter: 5, Window: Window{StartS: 0, EndS: 10}},
		{MaxIter: 2, Window: Window{StartS: 0, EndS: 10}},
	}}.New(1)
	ctx := mkCtx(0, 1)
	inj.Apply(0, &ctx)
	if ctx.SolverIterBudget != 2 {
		t.Fatalf("budget: got %d, want 2", ctx.SolverIterBudget)
	}
}

func TestBuiltins(t *testing.T) {
	names := BuiltinNames()
	if len(names) == 0 {
		t.Fatal("no built-in scenarios")
	}
	for _, n := range names {
		s, err := Builtin(n)
		if err != nil {
			t.Fatalf("Builtin(%q): %v", n, err)
		}
		if s.Empty() {
			t.Fatalf("built-in %q schedules nothing", n)
		}
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}
