// Package faults is the deterministic fault-injection layer: seeded,
// schedulable injectors that corrupt what the controller observes — the
// sensor readings, the motor-power/ambient preview, and the solver budget
// — while the plant keeps evolving on the true signals. The paper (and
// the related MPC literature it builds on) evaluates controllers under
// perfect sensing and preview; this package creates the broken-sensing
// regimes a production controller must survive, in a form the sweep
// engine can replay bit-identically.
//
// Determinism contract: every random draw is a pure function of the
// injector seed, the control-step index, and a per-fault salt (splitmix64
// finalizer). No shared RNG state exists, so a fault run replays
// bit-identically for any worker count, and two injectors built from the
// same Spec and seed produce the same fault sequence. The only mutable
// state is the hold-last buffer of dropout faults, which depends solely
// on the (deterministic) sequence of observed values.
package faults

import (
	"fmt"
	"math"

	"evclimate/internal/control"
)

// Signal names a controller observation a sensor fault corrupts.
type Signal int

const (
	// CabinTemp is the measured cabin temperature T_z.
	CabinTemp Signal = iota
	// OutsideTemp is the measured ambient temperature T_o.
	OutsideTemp
	// SoC is the reported battery state of charge.
	SoC
)

// String implements fmt.Stringer.
func (s Signal) String() string {
	switch s {
	case CabinTemp:
		return "cabin-temp"
	case OutsideTemp:
		return "outside-temp"
	case SoC:
		return "soc"
	default:
		return fmt.Sprintf("signal(%d)", int(s))
	}
}

// Mode is the corruption a sensor fault applies inside its window.
type Mode int

const (
	// Dropout holds the last pre-fault reading (a frozen sensor bus);
	// Rate, when in (0, 1), makes the dropout intermittent — each step
	// drops independently with that probability.
	Dropout Mode = iota
	// StuckAt replaces the reading with Value.
	StuckAt
	// Bias adds Value to the reading.
	Bias
	// Noise adds zero-mean Gaussian noise with standard deviation Value.
	Noise
	// Quantize rounds the reading to multiples of Value (a coarse ADC).
	Quantize
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Dropout:
		return "dropout"
	case StuckAt:
		return "stuck-at"
	case Bias:
		return "bias"
	case Noise:
		return "noise"
	case Quantize:
		return "quantize"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Window is a half-open activity interval [StartS, EndS) in simulation
// seconds. A zero window (both bounds zero) is always active.
type Window struct {
	StartS, EndS float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool {
	if w.StartS == 0 && w.EndS == 0 {
		return true
	}
	return t >= w.StartS && t < w.EndS
}

// SensorFault corrupts one observed signal inside its window.
type SensorFault struct {
	// Signal is the observation to corrupt.
	Signal Signal
	// Mode is the corruption kind.
	Mode Mode
	// Value parameterizes the mode: the stuck value (StuckAt), the offset
	// (Bias), the standard deviation (Noise), or the quantum (Quantize).
	// Dropout ignores it.
	Value float64
	// Rate, for Dropout, is the per-step probability of dropping; 0 or 1
	// drops every step of the window.
	Rate float64
	// Window bounds the fault's activity.
	Window Window
}

// ForecastMode is the corruption a forecast fault applies.
type ForecastMode int

const (
	// ForecastLoss removes the preview entirely (the telematics link is
	// down): the controller sees an empty Forecast.
	ForecastLoss ForecastMode = iota
	// ForecastTruncate keeps only the first Keep preview steps.
	ForecastTruncate
	// ForecastCorrupt adds zero-mean Gaussian noise with standard
	// deviation SigmaW to the motor-power preview (a wrong traffic/route
	// prediction), leaving ambient and solar untouched.
	ForecastCorrupt
)

// String implements fmt.Stringer.
func (m ForecastMode) String() string {
	switch m {
	case ForecastLoss:
		return "forecast-loss"
	case ForecastTruncate:
		return "forecast-truncate"
	case ForecastCorrupt:
		return "forecast-corrupt"
	default:
		return fmt.Sprintf("forecast-mode(%d)", int(m))
	}
}

// ForecastFault corrupts the preview inside its window.
type ForecastFault struct {
	// Mode is the corruption kind.
	Mode ForecastMode
	// Keep is the number of preview steps ForecastTruncate retains.
	Keep int
	// SigmaW is the ForecastCorrupt noise standard deviation in watts.
	SigmaW float64
	// Window bounds the fault's activity.
	Window Window
}

// SolverFault exhausts the optimizer's budget inside its window: the
// controller is told it has at most MaxIter solver iterations for the
// step (an overloaded ECU). Iteration caps — not wall-clock — keep fault
// runs deterministic.
type SolverFault struct {
	// MaxIter is the per-step iteration budget imposed (≥ 1).
	MaxIter int
	// Window bounds the fault's activity.
	Window Window
}

// Spec is a declarative, pure-data fault scenario: it can be hashed,
// printed, and shared between jobs; New instantiates the stateful
// injector that applies it.
type Spec struct {
	// Name labels the scenario in job results and reports.
	Name string
	// Sensor, Forecast, and Solver are the scheduled faults.
	Sensor   []SensorFault
	Forecast []ForecastFault
	Solver   []SolverFault
}

// Empty reports whether the spec schedules no faults at all.
func (s *Spec) Empty() bool {
	return s == nil || (len(s.Sensor) == 0 && len(s.Forecast) == 0 && len(s.Solver) == 0)
}

// New builds a fresh injector for one run. Injectors are stateful (the
// dropout hold-last buffer) and must not be shared between concurrent
// runs; the same (spec, seed) pair always yields an identical fault
// sequence.
func (s Spec) New(seed int64) *Injector {
	inj := &Injector{spec: s, seed: seed}
	inj.Reset()
	return inj
}

// Injector applies a Spec's faults to successive control steps.
type Injector struct {
	spec Spec
	seed int64
	held [3]float64 // hold-last buffer per Signal
	have [3]bool
}

// Spec returns the scenario the injector applies.
func (inj *Injector) Spec() Spec { return inj.spec }

// ActiveAt counts the scheduled faults whose windows contain simulation
// time t — the telemetry step span's "faults active" figure. It counts
// scheduled activity, not effect: a Dropout that happens to pass this
// step still counts while its window is open.
func (inj *Injector) ActiveAt(t float64) int {
	if inj == nil {
		return 0
	}
	n := 0
	for i := range inj.spec.Sensor {
		if inj.spec.Sensor[i].Window.Contains(t) {
			n++
		}
	}
	for i := range inj.spec.Forecast {
		if inj.spec.Forecast[i].Window.Contains(t) {
			n++
		}
	}
	for i := range inj.spec.Solver {
		if inj.spec.Solver[i].Window.Contains(t) {
			n++
		}
	}
	return n
}

// Reset clears the hold-last state before a new run.
func (inj *Injector) Reset() {
	inj.held = [3]float64{}
	inj.have = [3]bool{}
}

// InjectorState is the injector's serializable mutable state — the
// dropout hold-last buffer, the only state an injector carries (the spec
// and seed live in the run configuration). Restoring it into an injector
// built from the same (spec, seed) pair resumes the fault sequence
// bit-for-bit mid-run.
type InjectorState struct {
	// Held is the last good reading per Signal; Have marks which entries
	// are populated.
	Held [3]float64 `json:"held"`
	Have [3]bool    `json:"have"`
}

// State captures the injector state for checkpointing.
func (inj *Injector) State() InjectorState {
	return InjectorState{Held: inj.held, Have: inj.have}
}

// SetState replaces the injector state with a snapshot.
func (inj *Injector) SetState(st InjectorState) {
	inj.held = st.Held
	inj.have = st.Have
}

// splitmix64 is the SplitMix64 finalizer, the same mixer the sweep
// engine uses for per-job seeds.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// draw returns a deterministic uint64 for (seed, step, salt).
func (inj *Injector) draw(step, salt uint64) uint64 {
	return splitmix64(splitmix64(uint64(inj.seed)^salt) + 0x632BE59BD9B4E019*(step+1))
}

// uniform maps a draw onto [0, 1).
func uniform(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}

// gauss returns a standard normal deviate from two independent draws
// (Box–Muller).
func gauss(u1, u2 uint64) float64 {
	a := uniform(u1)
	if a <= 0 {
		a = math.SmallestNonzeroFloat64
	}
	return math.Sqrt(-2*math.Log(a)) * math.Cos(2*math.Pi*uniform(u2))
}

// signalValue reads the faulted signal from the context.
func signalValue(ctx *control.StepContext, s Signal) float64 {
	switch s {
	case CabinTemp:
		return ctx.CabinTempC
	case OutsideTemp:
		return ctx.OutsideC
	default:
		return ctx.SoC
	}
}

// setSignal writes the faulted signal back.
func setSignal(ctx *control.StepContext, s Signal, v float64) {
	switch s {
	case CabinTemp:
		ctx.CabinTempC = v
	case OutsideTemp:
		ctx.OutsideC = v
	default:
		ctx.SoC = v
	}
}

// Apply corrupts the controller's view of step `step` in place. The
// caller passes the true observations; after Apply the context holds
// what the (faulted) sensors and preview report. Apply must be called
// exactly once per control step, in step order, for the hold-last state
// to track the last good reading.
func (inj *Injector) Apply(step int, ctx *control.StepContext) {
	t := ctx.Time
	u := uint64(step)

	// Sensor faults. Hold-last tracking runs every step so a dropout
	// window opening at t holds the last pre-window reading.
	for fi := range inj.spec.Sensor {
		f := &inj.spec.Sensor[fi]
		salt := uint64(0xA11CE+fi) << 8
		active := f.Window.Contains(t)
		switch f.Mode {
		case Dropout:
			drop := active
			if active && f.Rate > 0 && f.Rate < 1 {
				drop = uniform(inj.draw(u, salt)) < f.Rate
			}
			if drop && inj.have[f.Signal] {
				setSignal(ctx, f.Signal, inj.held[f.Signal])
			} else {
				inj.held[f.Signal] = signalValue(ctx, f.Signal)
				inj.have[f.Signal] = true
			}
		case StuckAt:
			if active {
				setSignal(ctx, f.Signal, f.Value)
			}
		case Bias:
			if active {
				setSignal(ctx, f.Signal, signalValue(ctx, f.Signal)+f.Value)
			}
		case Noise:
			if active {
				n := gauss(inj.draw(u, salt), inj.draw(u, salt^0xFACADE))
				setSignal(ctx, f.Signal, signalValue(ctx, f.Signal)+f.Value*n)
			}
		case Quantize:
			if active && f.Value > 0 {
				v := signalValue(ctx, f.Signal)
				setSignal(ctx, f.Signal, math.Round(v/f.Value)*f.Value)
			}
		}
	}

	// Forecast faults.
	for fi := range inj.spec.Forecast {
		f := &inj.spec.Forecast[fi]
		if !f.Window.Contains(t) {
			continue
		}
		switch f.Mode {
		case ForecastLoss:
			ctx.Forecast = control.Forecast{}
		case ForecastTruncate:
			keep := f.Keep
			if keep < 0 {
				keep = 0
			}
			if keep < ctx.Forecast.Len() {
				ctx.Forecast.MotorPowerW = ctx.Forecast.MotorPowerW[:keep]
				ctx.Forecast.OutsideC = ctx.Forecast.OutsideC[:keep]
				ctx.Forecast.SolarW = ctx.Forecast.SolarW[:keep]
			}
		case ForecastCorrupt:
			if ctx.Forecast.Len() == 0 || f.SigmaW <= 0 {
				break
			}
			salt := uint64(0xF0CA57+fi) << 8
			// Copy before corrupting: the forecast slices are shared with
			// the simulation's preview builder.
			mp := make([]float64, len(ctx.Forecast.MotorPowerW))
			for k, v := range ctx.Forecast.MotorPowerW {
				n := gauss(inj.draw(u, salt+uint64(k)), inj.draw(u, salt+uint64(k)^0xBEEF))
				mp[k] = v + f.SigmaW*n
			}
			ctx.Forecast.MotorPowerW = mp
		}
	}

	// Solver-budget faults: the tightest active budget wins.
	for fi := range inj.spec.Solver {
		f := &inj.spec.Solver[fi]
		if !f.Window.Contains(t) || f.MaxIter <= 0 {
			continue
		}
		if ctx.SolverIterBudget == 0 || f.MaxIter < ctx.SolverIterBudget {
			ctx.SolverIterBudget = f.MaxIter
		}
	}
}
