// Package drivecycle models drive profiles (paper Sec. II-A): discrete-time
// sampled environment data — vehicle speed, acceleration, road slope,
// ambient temperature, and solar load — that feed the power-train and HVAC
// models. It provides the standard regulatory cycles the paper evaluates on
// (NEDC, ECE, EUDC, ECE_EUDC, US06, SC03, UDDS) and a route builder for
// composing realistic GPS-style profiles from segments.
package drivecycle

import (
	"errors"
	"fmt"
	"math"

	"evclimate/internal/units"
)

// Sample is one discrete-time sample of a drive profile.
type Sample struct {
	// Time is the sample time in seconds from profile start.
	Time float64
	// Speed is the vehicle speed in m/s.
	Speed float64
	// Accel is the vehicle acceleration in m/s².
	Accel float64
	// SlopePercent is the road slope in percent (100 % = 45°).
	SlopePercent float64
	// AmbientC is the outside air temperature in °C.
	AmbientC float64
	// SolarW is the solar radiation thermal load on the cabin in watts.
	SolarW float64
	// WindMs is the headwind component along the route in m/s
	// (negative = tailwind).
	WindMs float64
}

// Profile is a uniformly sampled drive profile.
type Profile struct {
	// Name identifies the source cycle or route.
	Name string
	// Dt is the sample period in seconds.
	Dt float64
	// Samples holds the per-step environment data.
	Samples []Sample
}

// ErrEmptyProfile is returned by operations that need at least one sample.
var ErrEmptyProfile = errors.New("drivecycle: empty profile")

// Duration returns the profile length in seconds.
func (p *Profile) Duration() float64 {
	if len(p.Samples) == 0 {
		return 0
	}
	return p.Samples[len(p.Samples)-1].Time
}

// Len returns the number of samples.
func (p *Profile) Len() int { return len(p.Samples) }

// At returns the sample whose interval contains time t, with linear
// interpolation of speed; t is clamped to the profile span.
func (p *Profile) At(t float64) Sample {
	if len(p.Samples) == 0 {
		return Sample{}
	}
	if t <= p.Samples[0].Time {
		return p.Samples[0]
	}
	last := p.Samples[len(p.Samples)-1]
	if t >= last.Time {
		return last
	}
	idx := int(math.Floor((t - p.Samples[0].Time) / p.Dt))
	if idx >= len(p.Samples)-1 {
		idx = len(p.Samples) - 2
	}
	a, b := p.Samples[idx], p.Samples[idx+1]
	if t < a.Time || t > b.Time {
		// Non-uniform spacing fallback: scan.
		for i := 0; i < len(p.Samples)-1; i++ {
			if p.Samples[i].Time <= t && t <= p.Samples[i+1].Time {
				a, b = p.Samples[i], p.Samples[i+1]
				break
			}
		}
	}
	w := (t - a.Time) / (b.Time - a.Time)
	return Sample{
		Time:         t,
		Speed:        units.Lerp(a.Speed, b.Speed, w),
		Accel:        a.Accel,
		SlopePercent: units.Lerp(a.SlopePercent, b.SlopePercent, w),
		AmbientC:     units.Lerp(a.AmbientC, b.AmbientC, w),
		SolarW:       units.Lerp(a.SolarW, b.SolarW, w),
		WindMs:       units.Lerp(a.WindMs, b.WindMs, w),
	}
}

// Stats summarizes a profile.
type Stats struct {
	// Duration is the total time in seconds.
	Duration float64
	// DistanceKm is the integrated distance in kilometers.
	DistanceKm float64
	// AvgSpeedKmh includes idle time.
	AvgSpeedKmh float64
	// MaxSpeedKmh is the peak speed.
	MaxSpeedKmh float64
	// MaxAccel and MaxDecel are the acceleration extremes in m/s².
	MaxAccel, MaxDecel float64
	// Stops counts transitions from motion to standstill.
	Stops int
	// IdleFraction is the fraction of samples at standstill.
	IdleFraction float64
}

// Stats computes summary statistics over the profile.
func (p *Profile) Stats() Stats {
	var s Stats
	if len(p.Samples) == 0 {
		return s
	}
	s.Duration = p.Duration()
	var dist float64
	idle := 0
	moving := false
	for i, smp := range p.Samples {
		if i > 0 {
			dt := smp.Time - p.Samples[i-1].Time
			dist += (smp.Speed + p.Samples[i-1].Speed) / 2 * dt
		}
		if kmh := units.MsToKmh(smp.Speed); kmh > s.MaxSpeedKmh {
			s.MaxSpeedKmh = kmh
		}
		if smp.Accel > s.MaxAccel {
			s.MaxAccel = smp.Accel
		}
		if smp.Accel < s.MaxDecel {
			s.MaxDecel = smp.Accel
		}
		still := smp.Speed < 0.05
		if still {
			idle++
			if moving {
				s.Stops++
			}
		}
		moving = !still
	}
	s.DistanceKm = dist / 1000
	if s.Duration > 0 {
		s.AvgSpeedKmh = units.MsToKmh(dist / s.Duration)
	}
	s.IdleFraction = float64(idle) / float64(len(p.Samples))
	return s
}

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	out := &Profile{Name: p.Name, Dt: p.Dt, Samples: make([]Sample, len(p.Samples))}
	copy(out.Samples, p.Samples)
	return out
}

// WithAmbient returns a copy with a constant ambient temperature (°C).
func (p *Profile) WithAmbient(tempC float64) *Profile {
	out := p.Clone()
	for i := range out.Samples {
		out.Samples[i].AmbientC = tempC
	}
	return out
}

// WithEnv returns a copy with a constant ambient temperature (°C) and a
// constant solar thermal load (W) — one clone where chaining
// WithAmbient and WithSolar would copy the samples twice. Sweep
// expansion builds one such profile per cycle/environment pair.
func (p *Profile) WithEnv(tempC, solarW float64) *Profile {
	out := p.Clone()
	for i := range out.Samples {
		out.Samples[i].AmbientC = tempC
		out.Samples[i].SolarW = solarW
	}
	return out
}

// WithSolar returns a copy with a constant solar thermal load (W). The
// paper treats solar radiation as a constant thermal-load offset during a
// drive (Sec. II-C).
func (p *Profile) WithSolar(watts float64) *Profile {
	out := p.Clone()
	for i := range out.Samples {
		out.Samples[i].SolarW = watts
	}
	return out
}

// WithWind returns a copy with a constant headwind (m/s; negative =
// tailwind).
func (p *Profile) WithWind(windMs float64) *Profile {
	out := p.Clone()
	for i := range out.Samples {
		out.Samples[i].WindMs = windMs
	}
	return out
}

// WithSlopeFunc returns a copy whose slope at each sample is slope(t) in
// percent.
func (p *Profile) WithSlopeFunc(slope func(t float64) float64) *Profile {
	out := p.Clone()
	for i := range out.Samples {
		out.Samples[i].SlopePercent = slope(out.Samples[i].Time)
	}
	return out
}

// WithAmbientFunc returns a copy whose ambient temperature at each sample
// is temp(t) in °C.
func (p *Profile) WithAmbientFunc(temp func(t float64) float64) *Profile {
	out := p.Clone()
	for i := range out.Samples {
		out.Samples[i].AmbientC = temp(out.Samples[i].Time)
	}
	return out
}

// Truncate returns the profile limited to maxS seconds; maxS ≤ 0 (or a
// bound past the end) keeps the full profile. The receiver is returned
// unchanged when no truncation is needed.
func (p *Profile) Truncate(maxS float64) *Profile {
	if maxS <= 0 || p.Duration() <= maxS {
		return p
	}
	out := &Profile{Name: p.Name, Dt: p.Dt}
	for _, s := range p.Samples {
		if s.Time > maxS {
			break
		}
		out.Samples = append(out.Samples, s)
	}
	return out
}

// Repeat returns the profile concatenated n times (n ≥ 1).
func (p *Profile) Repeat(n int) *Profile {
	if n < 1 {
		panic(fmt.Sprintf("drivecycle: Repeat(%d)", n))
	}
	out := &Profile{Name: fmt.Sprintf("%s×%d", p.Name, n), Dt: p.Dt}
	period := p.Duration() + p.Dt
	for k := 0; k < n; k++ {
		offset := float64(k) * period
		for _, s := range p.Samples {
			s.Time += offset
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// Validate checks structural invariants: positive Dt, monotone time,
// nonnegative speed, finite values.
func (p *Profile) Validate() error {
	if len(p.Samples) == 0 {
		return ErrEmptyProfile
	}
	if p.Dt <= 0 {
		return fmt.Errorf("drivecycle: profile %q has non-positive Dt %v", p.Name, p.Dt)
	}
	prev := math.Inf(-1)
	for i, s := range p.Samples {
		if s.Time <= prev {
			return fmt.Errorf("drivecycle: profile %q sample %d: time %v not increasing", p.Name, i, s.Time)
		}
		prev = s.Time
		if s.Speed < 0 {
			return fmt.Errorf("drivecycle: profile %q sample %d: negative speed %v", p.Name, i, s.Speed)
		}
		for _, v := range []float64{s.Speed, s.Accel, s.SlopePercent, s.AmbientC, s.SolarW, s.WindMs} {
			if !units.IsFinite(v) {
				return fmt.Errorf("drivecycle: profile %q sample %d: non-finite value", p.Name, i)
			}
		}
	}
	return nil
}
