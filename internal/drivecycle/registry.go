package drivecycle

import (
	"fmt"
	"sort"
	"strings"
)

// builders maps canonical cycle names to constructors. Construction is on
// demand so callers can mutate returned cycles freely.
var builders = map[string]func() *Cycle{
	"ECE15":    ECE15,
	"EUDC":     EUDC,
	"NEDC":     NEDC,
	"ECE_EUDC": ECEEUDC,
	"US06":     US06,
	"SC03":     SC03,
	"UDDS":     UDDS,
}

// Names returns the available standard cycle names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName returns a fresh instance of the named standard cycle. The lookup
// is case-insensitive and treats '-' and '_' as equivalent.
func ByName(name string) (*Cycle, error) {
	canon := strings.ToUpper(strings.ReplaceAll(name, "-", "_"))
	if b, ok := builders[canon]; ok {
		return b(), nil
	}
	return nil, fmt.Errorf("drivecycle: unknown cycle %q (have %s)", name, strings.Join(Names(), ", "))
}

// EvaluationCycles returns the five drive profiles of the paper's
// evaluation (Figs. 7–8) in the paper's order.
func EvaluationCycles() []*Cycle {
	return []*Cycle{NEDC(), US06(), ECEEUDC(), SC03(), UDDS()}
}
