package drivecycle

import (
	"fmt"
	"math"

	"evclimate/internal/units"
)

// RouteSegment is one leg of a GPS-style route: the information a
// navigation system provides ahead of time (paper Sec. II-A — route
// segments with average speed from traffic data, slope from elevation
// data, and ambient temperature from climate databases).
type RouteSegment struct {
	// LengthKm is the segment length in kilometers.
	LengthKm float64
	// SpeedKmh is the average travel speed over the segment.
	SpeedKmh float64
	// SlopePercent is the road grade (100 % = 45°).
	SlopePercent float64
	// AmbientC is the outside temperature over the segment in °C.
	AmbientC float64
	// SolarW is the solar thermal load over the segment in watts.
	SolarW float64
	// StopAtEnd inserts a stop (traffic light / junction) of StopS
	// seconds at the end of the segment.
	StopAtEnd bool
	// StopS is the stop duration when StopAtEnd is set (default 15 s).
	StopS float64
}

// Route is an ordered list of segments plus generation parameters.
type Route struct {
	// Name labels the generated profile.
	Name string
	// Segments describe the legs of the trip.
	Segments []RouteSegment
	// Accel is the acceleration used for speed transitions in m/s²
	// (default 1.2).
	Accel float64
}

// Profile renders the route into a drive profile sampled at dt. Speed
// transitions between segments are constant-acceleration ramps; each
// segment's slope, ambient, and solar values are applied over its span.
func (r *Route) Profile(dt float64) (*Profile, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("drivecycle: route %q: dt %v must be positive", r.Name, dt)
	}
	if len(r.Segments) == 0 {
		return nil, fmt.Errorf("drivecycle: route %q has no segments", r.Name)
	}
	accel := r.Accel
	if accel <= 0 {
		accel = 1.2
	}

	type envSpan struct {
		untilS                float64
		slope, ambient, solar float64
	}
	var (
		bps   []Breakpoint
		spans []envSpan
	)
	t, v := 0.0, 0.0 // current time, speed (km/h)
	bps = append(bps, Breakpoint{0, 0})
	push := func(dtSeg, speed float64) {
		if dtSeg <= 0 {
			return
		}
		t += dtSeg
		v = speed
		bps = append(bps, Breakpoint{t, speed})
	}
	for i, seg := range r.Segments {
		if seg.LengthKm <= 0 || seg.SpeedKmh <= 0 {
			return nil, fmt.Errorf("drivecycle: route %q segment %d: length and speed must be positive", r.Name, i)
		}
		// Ramp to the segment speed.
		dv := units.KmhToMs(seg.SpeedKmh - v)
		rampDist := 0.0
		if math.Abs(dv) > 1e-9 {
			rampT := math.Abs(dv) / accel
			rampDist = (units.KmhToMs(v) + units.KmhToMs(seg.SpeedKmh)) / 2 * rampT
			push(rampT, seg.SpeedKmh)
		}
		// Cruise for the remaining distance.
		remain := seg.LengthKm*1000 - rampDist
		if remain > 0 {
			push(remain/units.KmhToMs(seg.SpeedKmh), seg.SpeedKmh)
		}
		if seg.StopAtEnd {
			stopT := units.KmhToMs(v) / accel
			push(stopT, 0)
			dwell := seg.StopS
			if dwell <= 0 {
				dwell = 15
			}
			push(dwell, 0)
		}
		spans = append(spans, envSpan{untilS: t, slope: seg.SlopePercent, ambient: seg.AmbientC, solar: seg.SolarW})
	}
	// Final stop.
	if v > 0 {
		push(units.KmhToMs(v)/accel, 0)
		spans[len(spans)-1].untilS = t
	}

	cyc := &Cycle{Name: r.Name, Breakpoints: bps}
	if err := cyc.Validate(); err != nil {
		return nil, err
	}
	p := cyc.Profile(dt)
	// Apply per-segment environment values.
	si := 0
	for i := range p.Samples {
		for si < len(spans)-1 && p.Samples[i].Time > spans[si].untilS {
			si++
		}
		p.Samples[i].SlopePercent = spans[si].slope
		p.Samples[i].AmbientC = spans[si].ambient
		p.Samples[i].SolarW = spans[si].solar
	}
	return p, nil
}
