package drivecycle

import (
	"math"
	"testing"

	"evclimate/internal/units"
)

func TestECE15OfficialStats(t *testing.T) {
	c := ECE15()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Duration() != 195 {
		t.Errorf("duration = %v, want 195", c.Duration())
	}
	// Official UDC distance ≈ 1.013 km (we allow 5 %: the table is the
	// regulatory ramp structure).
	if d := c.DistanceKm(); math.Abs(d-1.013) > 0.05 {
		t.Errorf("distance = %v km, want ≈ 1.013", d)
	}
	// Max speed 50 km/h.
	p := c.Profile(1)
	if s := p.Stats(); math.Abs(s.MaxSpeedKmh-50) > 1e-9 {
		t.Errorf("max speed = %v, want 50", s.MaxSpeedKmh)
	}
}

func TestEUDCOfficialStats(t *testing.T) {
	c := EUDC()
	if c.Duration() != 400 {
		t.Errorf("duration = %v, want 400", c.Duration())
	}
	if d := c.DistanceKm(); math.Abs(d-6.955) > 0.25 {
		t.Errorf("distance = %v km, want ≈ 6.955", d)
	}
	if s := c.Profile(1).Stats(); math.Abs(s.MaxSpeedKmh-120) > 1e-9 {
		t.Errorf("max speed = %v, want 120", s.MaxSpeedKmh)
	}
}

func TestNEDCComposition(t *testing.T) {
	c := NEDC()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Duration()-1180) > 1 {
		t.Errorf("duration = %v, want 1180", c.Duration())
	}
	if d := c.DistanceKm(); math.Abs(d-11.0) > 0.5 {
		t.Errorf("distance = %v km, want ≈ 11.0", d)
	}
	s := c.Profile(1).Stats()
	if s.Stops != 13 { // 3 stops × 4 urban repeats + final EUDC stop
		t.Errorf("stops = %d, want 13", s.Stops)
	}
}

func TestECEEUDCComposition(t *testing.T) {
	c := ECEEUDC()
	if math.Abs(c.Duration()-595) > 1 {
		t.Errorf("duration = %v, want 595", c.Duration())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticCyclesMatchEPAStats(t *testing.T) {
	cases := []struct {
		cycle            *Cycle
		durS, distKm     float64
		avgKmh, maxKmh   float64
		stops            int
		relTol, stopSlop float64
	}{
		{US06(), 600, 12.89, 77.2, 129.2, 5, 0.05, 2},
		{SC03(), 596, 5.76, 34.8, 88.2, 5, 0.05, 2},
		{UDDS(), 1369, 11.99, 31.5, 91.2, 17, 0.05, 2},
	}
	for _, tc := range cases {
		s := tc.cycle.Profile(1).Stats()
		rel := func(got, want float64) float64 { return math.Abs(got-want) / want }
		if rel(s.Duration, tc.durS) > tc.relTol {
			t.Errorf("%s: duration %v, want ≈ %v", tc.cycle.Name, s.Duration, tc.durS)
		}
		if rel(s.DistanceKm, tc.distKm) > tc.relTol {
			t.Errorf("%s: distance %v, want ≈ %v", tc.cycle.Name, s.DistanceKm, tc.distKm)
		}
		if rel(s.AvgSpeedKmh, tc.avgKmh) > tc.relTol {
			t.Errorf("%s: avg speed %v, want ≈ %v", tc.cycle.Name, s.AvgSpeedKmh, tc.avgKmh)
		}
		if rel(s.MaxSpeedKmh, tc.maxKmh) > 0.01 {
			t.Errorf("%s: max speed %v, want ≈ %v", tc.cycle.Name, s.MaxSpeedKmh, tc.maxKmh)
		}
		if math.Abs(float64(s.Stops-tc.stops)) > tc.stopSlop {
			t.Errorf("%s: stops %d, want ≈ %d", tc.cycle.Name, s.Stops, tc.stops)
		}
	}
}

func TestAllStandardCyclesValidate(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		p := c.Profile(1)
		if err := p.Validate(); err != nil {
			t.Errorf("%s profile: %v", name, err)
		}
	}
}

func TestByNameAliases(t *testing.T) {
	for _, alias := range []string{"nedc", "NEDC", "ece-eudc", "ECE_EUDC", "us06"} {
		if _, err := ByName(alias); err != nil {
			t.Errorf("ByName(%q): %v", alias, err)
		}
	}
	if _, err := ByName("FTP75"); err == nil {
		t.Error("unknown cycle accepted")
	}
}

func TestEvaluationCyclesOrder(t *testing.T) {
	cs := EvaluationCycles()
	want := []string{"NEDC", "US06", "ECE_EUDC", "SC03", "UDDS"}
	if len(cs) != len(want) {
		t.Fatalf("got %d cycles", len(cs))
	}
	for i, c := range cs {
		if c.Name != want[i] {
			t.Errorf("cycle %d = %s, want %s", i, c.Name, want[i])
		}
	}
}

func TestSpeedAtInterpolation(t *testing.T) {
	c := &Cycle{Name: "tri", Breakpoints: []Breakpoint{{0, 0}, {10, 36}, {20, 0}}}
	if got := c.SpeedAt(5); math.Abs(got-5) > 1e-12 { // 18 km/h = 5 m/s
		t.Errorf("SpeedAt(5) = %v, want 5", got)
	}
	if got := c.SpeedAt(-1); got != 0 {
		t.Errorf("SpeedAt before start = %v", got)
	}
	if got := c.SpeedAt(100); got != 0 {
		t.Errorf("SpeedAt after end = %v", got)
	}
}

func TestProfileAccelConsistency(t *testing.T) {
	// Forward-difference accel must integrate back to the speed trace.
	p := NEDC().Profile(1)
	for i := 0; i < len(p.Samples)-1; i++ {
		v := p.Samples[i].Speed + p.Samples[i].Accel*p.Dt
		if math.Abs(v-p.Samples[i+1].Speed) > 1e-9 {
			t.Fatalf("sample %d: accel inconsistent (%v vs %v)", i, v, p.Samples[i+1].Speed)
		}
	}
}

func TestRepeatCycleDuration(t *testing.T) {
	c := ECE15().RepeatCycle(4)
	if math.Abs(c.Duration()-4*195) > 1 {
		t.Errorf("duration = %v, want 780", c.Duration())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := c.DistanceKm(); math.Abs(d-4*ECE15().DistanceKm()) > 0.01 {
		t.Errorf("distance %v, want 4× single", d)
	}
}

func TestAppendSeamSpeedJump(t *testing.T) {
	// Appending a cycle that starts at a different speed keeps monotone
	// time (inserts an epsilon-later breakpoint) and validates.
	a := &Cycle{Name: "a", Breakpoints: []Breakpoint{{0, 0}, {10, 50}}}
	b := &Cycle{Name: "b", Breakpoints: []Breakpoint{{0, 20}, {10, 0}}}
	c := a.Append(b)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Duration()-20) > 1e-6 {
		t.Errorf("duration = %v, want 20", c.Duration())
	}
}

func TestProfileAtClampsAndInterpolates(t *testing.T) {
	p := ECE15().Profile(1).WithAmbient(35)
	s := p.At(-5)
	if s.Time != 0 {
		t.Errorf("At(-5).Time = %v", s.Time)
	}
	s = p.At(1e9)
	if s.Time != p.Duration() {
		t.Errorf("At(inf).Time = %v, want %v", s.Time, p.Duration())
	}
	mid := p.At(13.5) // during the 11→15 s ramp to 15 km/h
	lo, hi := p.At(13).Speed, p.At(14).Speed
	if mid.Speed < math.Min(lo, hi) || mid.Speed > math.Max(lo, hi) {
		t.Errorf("interpolated speed %v outside [%v, %v]", mid.Speed, lo, hi)
	}
	if mid.AmbientC != 35 {
		t.Errorf("ambient not propagated: %v", mid.AmbientC)
	}
}

func TestProfileWithHelpers(t *testing.T) {
	p := ECE15().Profile(1)
	q := p.WithAmbient(40).WithSolar(250).WithSlopeFunc(func(t float64) float64 { return 2 })
	if q.Samples[10].AmbientC != 40 || q.Samples[10].SolarW != 250 || q.Samples[10].SlopePercent != 2 {
		t.Errorf("With helpers did not apply: %+v", q.Samples[10])
	}
	// Original untouched.
	if p.Samples[10].AmbientC != 0 || p.Samples[10].SolarW != 0 {
		t.Error("With helpers mutated the original")
	}
	r := q.WithAmbientFunc(func(t float64) float64 { return t / 100 })
	if r.Samples[100].AmbientC != 1 {
		t.Errorf("WithAmbientFunc wrong: %v", r.Samples[100].AmbientC)
	}
}

func TestProfileRepeat(t *testing.T) {
	p := ECE15().Profile(1)
	r := p.Repeat(3)
	if r.Len() != 3*p.Len() {
		t.Errorf("len = %d, want %d", r.Len(), 3*p.Len())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	s1, s3 := p.Stats(), r.Stats()
	if math.Abs(s3.DistanceKm-3*s1.DistanceKm) > 0.01 {
		t.Errorf("repeated distance %v, want %v", s3.DistanceKm, 3*s1.DistanceKm)
	}
}

func TestProfileValidateCatchesErrors(t *testing.T) {
	if err := (&Profile{}).Validate(); err != ErrEmptyProfile {
		t.Errorf("empty profile: %v", err)
	}
	bad := &Profile{Name: "bad", Dt: 1, Samples: []Sample{{Time: 0}, {Time: 0}}}
	if bad.Validate() == nil {
		t.Error("non-monotone time accepted")
	}
	neg := &Profile{Name: "neg", Dt: 1, Samples: []Sample{{Time: 0, Speed: -1}}}
	if neg.Validate() == nil {
		t.Error("negative speed accepted")
	}
	nan := &Profile{Name: "nan", Dt: 1, Samples: []Sample{{Time: 0, AmbientC: math.NaN()}}}
	if nan.Validate() == nil {
		t.Error("NaN ambient accepted")
	}
}

func TestStatsIdleFractionAndStops(t *testing.T) {
	c := &Cycle{Name: "one-stop", Breakpoints: []Breakpoint{
		{0, 0}, {10, 0}, {20, 36}, {30, 0}, {40, 0},
	}}
	s := c.Profile(1).Stats()
	if s.Stops != 1 {
		t.Errorf("stops = %d, want 1", s.Stops)
	}
	if s.IdleFraction < 0.4 || s.IdleFraction > 0.6 {
		t.Errorf("idle fraction = %v", s.IdleFraction)
	}
}

func TestRouteProfile(t *testing.T) {
	r := &Route{
		Name: "commute",
		Segments: []RouteSegment{
			{LengthKm: 2, SpeedKmh: 50, SlopePercent: 1, AmbientC: 30, SolarW: 200, StopAtEnd: true, StopS: 20},
			{LengthKm: 5, SpeedKmh: 100, SlopePercent: -0.5, AmbientC: 31, SolarW: 220},
			{LengthKm: 1, SpeedKmh: 30, SlopePercent: 0, AmbientC: 32, SolarW: 220},
		},
	}
	p, err := r.Profile(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if math.Abs(s.DistanceKm-8) > 0.4 {
		t.Errorf("distance = %v, want ≈ 8", s.DistanceKm)
	}
	if math.Abs(s.MaxSpeedKmh-100) > 1 {
		t.Errorf("max speed = %v, want 100", s.MaxSpeedKmh)
	}
	if s.Stops < 2 { // the mid-route stop and the final stop
		t.Errorf("stops = %d, want ≥ 2", s.Stops)
	}
	// Environment per segment: early samples at ambient 30, late at 32.
	if p.Samples[10].AmbientC != 30 {
		t.Errorf("segment 1 ambient = %v", p.Samples[10].AmbientC)
	}
	last := p.Samples[p.Len()-2]
	if last.AmbientC != 32 {
		t.Errorf("final segment ambient = %v", last.AmbientC)
	}
	// The uphill first segment must carry its slope.
	if p.Samples[10].SlopePercent != 1 {
		t.Errorf("segment 1 slope = %v", p.Samples[10].SlopePercent)
	}
}

func TestRouteErrors(t *testing.T) {
	if _, err := (&Route{Name: "x"}).Profile(1); err == nil {
		t.Error("empty route accepted")
	}
	r := &Route{Name: "x", Segments: []RouteSegment{{LengthKm: 0, SpeedKmh: 50}}}
	if _, err := r.Profile(1); err == nil {
		t.Error("zero-length segment accepted")
	}
	r2 := &Route{Name: "x", Segments: []RouteSegment{{LengthKm: 1, SpeedKmh: 50}}}
	if _, err := r2.Profile(0); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestSpeedsAreMetersPerSecond(t *testing.T) {
	// Spot-check unit handling: 120 km/h EUDC peak is 33.33 m/s.
	p := EUDC().Profile(1)
	var mx float64
	for _, s := range p.Samples {
		if s.Speed > mx {
			mx = s.Speed
		}
	}
	if math.Abs(mx-units.KmhToMs(120)) > 1e-9 {
		t.Errorf("peak speed = %v m/s, want %v", mx, units.KmhToMs(120))
	}
}

func TestWLTPStats(t *testing.T) {
	c := WLTP()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Profile(1).Stats()
	rel := func(got, want float64) float64 { return math.Abs(got-want) / want }
	// WLTC class-3b reference: 1800 s, 23.27 km, avg 46.5 km/h,
	// max 131.3 km/h.
	if rel(s.Duration, 1800) > 0.05 {
		t.Errorf("duration %v, want ≈ 1800", s.Duration)
	}
	if rel(s.DistanceKm, 23.27) > 0.05 {
		t.Errorf("distance %v, want ≈ 23.27", s.DistanceKm)
	}
	if rel(s.AvgSpeedKmh, 46.5) > 0.05 {
		t.Errorf("avg speed %v, want ≈ 46.5", s.AvgSpeedKmh)
	}
	if rel(s.MaxSpeedKmh, 131.3) > 0.01 {
		t.Errorf("max speed %v, want ≈ 131.3", s.MaxSpeedKmh)
	}
	// Registered in the lookup table.
	if _, err := ByName("wltp"); err != nil {
		t.Errorf("ByName(wltp): %v", err)
	}
}

// TestProfileMatchesSpeedAt pins the cursor-based Profile sampling to
// the direct SpeedAt evaluation, bitwise, across every registered cycle
// and a non-integer sample period: the forward-cursor segment search
// must select exactly the segments the from-scratch scan selects.
func TestProfileMatchesSpeedAt(t *testing.T) {
	for _, name := range Names() {
		cyc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, dt := range []float64{1, 0.7, 2.5} {
			p := cyc.Profile(dt)
			for i, s := range p.Samples {
				tm := float64(i) * dt
				v := cyc.SpeedAt(tm)
				vNext := cyc.SpeedAt(tm + dt)
				if s.Time != tm || s.Speed != v || s.Accel != (vNext-v)/dt {
					t.Fatalf("%s dt=%v sample %d: got {%v %v %v}, want {%v %v %v}",
						name, dt, i, s.Time, s.Speed, s.Accel, tm, v, (vNext-v)/dt)
				}
			}
		}
	}
}
