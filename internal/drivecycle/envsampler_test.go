package drivecycle

import (
	"math"
	"testing"
)

// TestEnvSamplerMatchesAt pins the bit-equivalence contract: EnvAt and
// EnvSampler.At return exactly the bits Profile.At reports for the two
// environment fields, on constant, varying, and non-uniform profiles,
// including times before, inside (on- and off-sample), and past the span.
func TestEnvSamplerMatchesAt(t *testing.T) {
	constant := ECE15().Profile(1).WithAmbient(35).WithSolar(400)
	varying := ECE15().Profile(1).
		WithAmbientFunc(func(tt float64) float64 { return 20 + 10*math.Sin(tt/40) }).
		WithSolar(300)
	nonUniform := &Profile{Name: "nonuniform", Dt: 1, Samples: []Sample{
		{Time: 0, AmbientC: 10, SolarW: 100},
		{Time: 1, AmbientC: 12, SolarW: 150},
		{Time: 3.5, AmbientC: 9, SolarW: 80},
		{Time: 4, AmbientC: 15, SolarW: 260},
	}}

	for _, tc := range []struct {
		name         string
		p            *Profile
		wantConstant bool
	}{
		{"constant", constant, true},
		{"varying", varying, false},
		{"nonuniform", nonUniform, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			es := NewEnvSampler(tc.p)
			if es.Constant() != tc.wantConstant {
				t.Errorf("Constant() = %v, want %v", es.Constant(), tc.wantConstant)
			}
			dur := tc.p.Duration()
			times := []float64{-5, 0, 0.25, 1, 1.5, 2.75, dur / 3, dur/2 + 0.125, dur - 0.5, dur, dur + 10}
			for k := 0; k < 200; k++ {
				times = append(times, dur*float64(k)/199)
			}
			for _, tt := range times {
				s := tc.p.At(tt)
				amb, sol := es.At(tt)
				if amb != s.AmbientC || sol != s.SolarW {
					t.Fatalf("t=%v: EnvSampler.At = (%v, %v), Profile.At = (%v, %v)",
						tt, amb, sol, s.AmbientC, s.SolarW)
				}
				amb2, sol2 := tc.p.EnvAt(tt)
				if amb2 != s.AmbientC || sol2 != s.SolarW {
					t.Fatalf("t=%v: EnvAt = (%v, %v), Profile.At = (%v, %v)",
						tt, amb2, sol2, s.AmbientC, s.SolarW)
				}
			}
		})
	}
}
