package drivecycle

import "evclimate/internal/units"

// The EPA transient cycles (US06, SC03, UDDS) are distributed as measured
// second-by-second traces. We reconstruct them as deterministic micro-trip
// sequences matched to the published summary statistics — duration,
// distance, average and maximum speed, and stop count — which is what the
// power-train load dynamics depend on. The reconstruction is exact in
// structure (stop-and-go urban vs. aggressive highway) and approximate in
// trajectory; tests pin the statistics to the EPA values within a few
// percent. See DESIGN.md §3 for the substitution rationale.

// microTrip describes one accelerate–cruise–decelerate–idle element.
type microTrip struct {
	peakKmh   float64 // cruise speed
	accel     float64 // acceleration to peak, m/s²
	cruiseS   float64 // cruise duration, s
	wobbleKmh float64 // cruise speed ripple amplitude, km/h
	decel     float64 // deceleration magnitude to endKmh, m/s²
	endKmh    float64 // speed at element end (usually 0)
	idleS     float64 // idle dwell after the element, s
}

// buildCycle converts micro-trips into a piecewise-linear cycle starting
// with leadIdleS seconds at rest.
func buildCycle(name string, leadIdleS float64, trips []microTrip) *Cycle {
	c := &Cycle{Name: name}
	t := 0.0
	v := 0.0 // current speed km/h
	push := func(dt, speed float64) {
		if dt <= 0 {
			dt = 0.1
		}
		t += dt
		v = speed
		c.Breakpoints = append(c.Breakpoints, Breakpoint{t, speed})
	}
	c.Breakpoints = append(c.Breakpoints, Breakpoint{0, 0})
	if leadIdleS > 0 {
		push(leadIdleS, 0)
	}
	for _, mt := range trips {
		// Accelerate from the current speed to the peak.
		dv := units.KmhToMs(mt.peakKmh - v)
		if dv > 0 && mt.accel > 0 {
			push(dv/mt.accel, mt.peakKmh)
		}
		// Cruise with a triangular ripple dipping below the peak,
		// alternating every ~15 s — stands in for the speed texture of
		// real traffic while keeping the cycle's maximum speed exact.
		if mt.cruiseS > 0 {
			remaining := mt.cruiseS
			dip := true
			for remaining > 0 {
				seg := 15.0
				if seg > remaining {
					seg = remaining
				}
				target := mt.peakKmh
				if mt.wobbleKmh > 0 && dip {
					target -= mt.wobbleKmh
				}
				dip = !dip
				push(seg, target)
				remaining -= seg
			}
			// End the cruise back at the nominal peak.
			if v != mt.peakKmh {
				push(2, mt.peakKmh)
			}
		}
		// Decelerate to the element end speed.
		dv = units.KmhToMs(v - mt.endKmh)
		if dv > 0 && mt.decel > 0 {
			push(dv/mt.decel, mt.endKmh)
		}
		if mt.idleS > 0 {
			push(mt.idleS, mt.endKmh)
		}
	}
	return c
}

// US06 returns the aggressive supplemental FTP cycle: high speeds and hard
// accelerations. EPA reference: 600 s, 12.89 km, avg 77.2 km/h,
// max 129.2 km/h.
func US06() *Cycle {
	return buildCycle("US06", 20, []microTrip{
		{peakKmh: 107, accel: 2.7, cruiseS: 40, wobbleKmh: 7, decel: 2.4, endKmh: 0, idleS: 25},
		{peakKmh: 129.2, accel: 2.3, cruiseS: 105, wobbleKmh: 9, decel: 1.6, endKmh: 80, idleS: 0},
		{peakKmh: 113, accel: 1.8, cruiseS: 80, wobbleKmh: 8, decel: 2.2, endKmh: 0, idleS: 35},
		{peakKmh: 97, accel: 2.9, cruiseS: 55, wobbleKmh: 8, decel: 2.5, endKmh: 40, idleS: 0},
		{peakKmh: 120, accel: 2.0, cruiseS: 70, wobbleKmh: 8, decel: 2.4, endKmh: 0, idleS: 58},
	})
}

// SC03 returns the air-conditioning supplemental FTP cycle: urban
// stop-and-go driven with the HVAC on. EPA reference: 596 s, 5.76 km,
// avg 34.8 km/h, max 88.2 km/h.
func SC03() *Cycle {
	return buildCycle("SC03", 22, []microTrip{
		{peakKmh: 41, accel: 1.4, cruiseS: 30, wobbleKmh: 5, decel: 1.6, endKmh: 0, idleS: 25},
		{peakKmh: 88.2, accel: 1.5, cruiseS: 75, wobbleKmh: 6, decel: 1.4, endKmh: 0, idleS: 30},
		{peakKmh: 50, accel: 1.3, cruiseS: 45, wobbleKmh: 6, decel: 1.5, endKmh: 0, idleS: 28},
		{peakKmh: 56, accel: 1.2, cruiseS: 50, wobbleKmh: 5, decel: 1.4, endKmh: 0, idleS: 26},
		{peakKmh: 64, accel: 1.3, cruiseS: 45, wobbleKmh: 5, decel: 1.4, endKmh: 0, idleS: 20},
		{peakKmh: 44, accel: 1.3, cruiseS: 35, wobbleKmh: 5, decel: 1.5, endKmh: 0, idleS: 24},
	})
}

// UDDS returns the Urban Dynamometer Driving Schedule (FTP-72 "city"
// cycle): many low-speed micro-trips with one early highway-speed hill.
// EPA reference: 1369 s, 11.99 km, avg 31.5 km/h, max 91.2 km/h, 17 stops.
func UDDS() *Cycle {
	trips := []microTrip{
		// The characteristic first hill to 91 km/h.
		{peakKmh: 91.2, accel: 1.3, cruiseS: 135, wobbleKmh: 7, decel: 1.1, endKmh: 0, idleS: 34},
		{peakKmh: 40, accel: 1.1, cruiseS: 25, wobbleKmh: 5, decel: 1.3, endKmh: 0, idleS: 21},
		{peakKmh: 55, accel: 1.2, cruiseS: 40, wobbleKmh: 6, decel: 1.3, endKmh: 0, idleS: 23},
		{peakKmh: 37, accel: 1.1, cruiseS: 22, wobbleKmh: 4, decel: 1.4, endKmh: 0, idleS: 19},
		{peakKmh: 48, accel: 1.2, cruiseS: 30, wobbleKmh: 5, decel: 1.3, endKmh: 0, idleS: 22},
		{peakKmh: 43, accel: 1.0, cruiseS: 26, wobbleKmh: 5, decel: 1.2, endKmh: 0, idleS: 20},
		{peakKmh: 58, accel: 1.2, cruiseS: 42, wobbleKmh: 6, decel: 1.3, endKmh: 0, idleS: 24},
		{peakKmh: 35, accel: 1.0, cruiseS: 20, wobbleKmh: 4, decel: 1.3, endKmh: 0, idleS: 19},
		{peakKmh: 46, accel: 1.1, cruiseS: 28, wobbleKmh: 5, decel: 1.2, endKmh: 0, idleS: 21},
		{peakKmh: 52, accel: 1.2, cruiseS: 34, wobbleKmh: 5, decel: 1.3, endKmh: 0, idleS: 22},
		{peakKmh: 39, accel: 1.0, cruiseS: 22, wobbleKmh: 4, decel: 1.2, endKmh: 0, idleS: 19},
		{peakKmh: 49, accel: 1.1, cruiseS: 30, wobbleKmh: 5, decel: 1.3, endKmh: 0, idleS: 21},
		{peakKmh: 44, accel: 1.1, cruiseS: 24, wobbleKmh: 5, decel: 1.2, endKmh: 0, idleS: 20},
		{peakKmh: 57, accel: 1.2, cruiseS: 38, wobbleKmh: 6, decel: 1.3, endKmh: 0, idleS: 22},
		{peakKmh: 41, accel: 1.0, cruiseS: 22, wobbleKmh: 4, decel: 1.2, endKmh: 0, idleS: 19},
		{peakKmh: 47, accel: 1.1, cruiseS: 26, wobbleKmh: 5, decel: 1.3, endKmh: 0, idleS: 20},
		{peakKmh: 36, accel: 1.0, cruiseS: 18, wobbleKmh: 4, decel: 1.2, endKmh: 0, idleS: 23},
	}
	return buildCycle("UDDS", 15, trips)
}
