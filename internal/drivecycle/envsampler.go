package drivecycle

import (
	"math"

	"evclimate/internal/units"
)

// EnvAt returns the ambient temperature and solar load that At(t) would
// report, without interpolating the four fields the plant's thermal ODE
// never reads or materializing a Sample. The arithmetic is the same
// per-field Lerp over the same bracketing pair, so the returned values
// are bit-identical to At(t).AmbientC / At(t).SolarW.
func (p *Profile) EnvAt(t float64) (ambientC, solarW float64) {
	if len(p.Samples) == 0 {
		return 0, 0
	}
	if t <= p.Samples[0].Time {
		s := &p.Samples[0]
		return s.AmbientC, s.SolarW
	}
	last := &p.Samples[len(p.Samples)-1]
	if t >= last.Time {
		return last.AmbientC, last.SolarW
	}
	idx := int(math.Floor((t - p.Samples[0].Time) / p.Dt))
	if idx >= len(p.Samples)-1 {
		idx = len(p.Samples) - 2
	}
	a, b := &p.Samples[idx], &p.Samples[idx+1]
	if t < a.Time || t > b.Time {
		// Non-uniform spacing fallback: scan.
		for i := 0; i < len(p.Samples)-1; i++ {
			if p.Samples[i].Time <= t && t <= p.Samples[i+1].Time {
				a, b = &p.Samples[i], &p.Samples[i+1]
				break
			}
		}
	}
	w := (t - a.Time) / (b.Time - a.Time)
	return units.Lerp(a.AmbientC, b.AmbientC, w), units.Lerp(a.SolarW, b.SolarW, w)
}

// EnvSampler samples a profile's environment signals (ambient, solar)
// with a constant-field fast path. Sweep environments are built with
// WithAmbient/WithSolar, which write the same value into every sample —
// detecting that once at construction turns the per-sub-step
// interpolation of the plant ODE's right-hand side into two loads.
// Lerp(c, c, w) = c + (c-c)·w = c for finite c, so the fast path returns
// the same bits the interpolating path would.
type EnvSampler struct {
	p          *Profile
	constant   bool
	ambC, solW float64
}

// NewEnvSampler builds a sampler over p, detecting constant fields.
func NewEnvSampler(p *Profile) *EnvSampler {
	e := &EnvSampler{p: p}
	if len(p.Samples) > 0 {
		e.ambC, e.solW = p.Samples[0].AmbientC, p.Samples[0].SolarW
		e.constant = true
		for i := range p.Samples {
			if p.Samples[i].AmbientC != e.ambC || p.Samples[i].SolarW != e.solW {
				e.constant = false
				break
			}
		}
	}
	return e
}

// Constant reports whether both sampled fields are constant over the
// profile (the fast path is active).
func (e *EnvSampler) Constant() bool { return e.constant }

// ConstantEnv returns the fast-path values; ok is false when the
// profile's environment varies over time and At must interpolate.
func (e *EnvSampler) ConstantEnv() (ambC, solW float64, ok bool) {
	return e.ambC, e.solW, e.constant
}

// At returns the ambient temperature and solar load at time t,
// bit-identical to Profile.At(t).AmbientC / .SolarW.
func (e *EnvSampler) At(t float64) (ambientC, solarW float64) {
	if e.constant {
		return e.ambC, e.solW
	}
	return e.p.EnvAt(t)
}
