package drivecycle

import (
	"fmt"
	"math"

	"evclimate/internal/units"
)

// Breakpoint is one vertex of a piecewise-linear speed trace.
type Breakpoint struct {
	// TimeS is the time in seconds from cycle start.
	TimeS float64
	// SpeedKmh is the vehicle speed in km/h at that time.
	SpeedKmh float64
}

// Cycle is a named speed trace defined by piecewise-linear breakpoints.
// The European regulatory cycles (ECE-15, EUDC and their compositions) are
// officially *defined* this way — as sequences of constant-acceleration
// ramps and cruises — so this representation is exact for them.
type Cycle struct {
	// Name is the cycle identifier, e.g. "NEDC".
	Name string
	// Breakpoints must have strictly increasing times and start at 0.
	Breakpoints []Breakpoint
}

// Duration returns the cycle length in seconds.
func (c *Cycle) Duration() float64 {
	if len(c.Breakpoints) == 0 {
		return 0
	}
	return c.Breakpoints[len(c.Breakpoints)-1].TimeS
}

// SpeedAt returns the speed in m/s at time t (clamped to the cycle span).
func (c *Cycle) SpeedAt(t float64) float64 {
	bp := c.Breakpoints
	if len(bp) == 0 {
		return 0
	}
	if t <= bp[0].TimeS {
		return units.KmhToMs(bp[0].SpeedKmh)
	}
	for i := 0; i < len(bp)-1; i++ {
		if t <= bp[i+1].TimeS {
			w := (t - bp[i].TimeS) / (bp[i+1].TimeS - bp[i].TimeS)
			return units.KmhToMs(units.Lerp(bp[i].SpeedKmh, bp[i+1].SpeedKmh, w))
		}
	}
	return units.KmhToMs(bp[len(bp)-1].SpeedKmh)
}

// speedAtFrom is SpeedAt with a resumable segment cursor for monotone
// query sequences: *idx is the segment index of the previous (smaller)
// query, so each call only advances forward instead of re-scanning the
// breakpoint list from the start. The segment chosen — the first i with
// t ≤ bp[i+1].TimeS — and the interpolation arithmetic are exactly
// SpeedAt's, so the result is bit-identical.
func speedAtFrom(bp []Breakpoint, t float64, idx *int) float64 {
	if t <= bp[0].TimeS {
		return units.KmhToMs(bp[0].SpeedKmh)
	}
	i := *idx
	for i < len(bp)-1 && bp[i+1].TimeS < t {
		i++
	}
	*idx = i
	if i >= len(bp)-1 {
		return units.KmhToMs(bp[len(bp)-1].SpeedKmh)
	}
	w := (t - bp[i].TimeS) / (bp[i+1].TimeS - bp[i].TimeS)
	return units.KmhToMs(units.Lerp(bp[i].SpeedKmh, bp[i+1].SpeedKmh, w))
}

// Profile samples the cycle at period dt, computing acceleration by
// forward differences (matching the discrete drive-profile definition in
// paper Sec. II-A). Slope, ambient, and solar default to zero; use the
// Profile.With* helpers to set them. Sampling walks the breakpoint list
// once with two cursors (one per forward-difference endpoint) instead of
// scanning it per sample; each sample is bit-identical to calling
// SpeedAt directly (pinned by TestProfileMatchesSpeedAt).
func (c *Cycle) Profile(dt float64) *Profile {
	return c.ProfileSpan(dt, 0)
}

// ProfileSpan samples the cycle like Profile but only up to maxS seconds
// (maxS ≤ 0 or a bound past the end samples the full cycle). The result
// is sample-for-sample identical to Profile(dt).Truncate(maxS) — each
// sample depends only on its own time — without materializing the tail;
// sweep expansion truncates to its MaxProfileS anyway, so building the
// full cycle just to throw most of it away dominated expansion.
func (c *Cycle) ProfileSpan(dt, maxS float64) *Profile {
	if dt <= 0 {
		panic(fmt.Sprintf("drivecycle: Profile(dt=%v)", dt))
	}
	dur := c.Duration()
	n := int(math.Round(dur/dt)) + 1
	if maxS > 0 {
		// Truncate keeps samples with Time ≤ maxS; count them directly.
		m := 0
		for m < n && float64(m)*dt <= maxS {
			m++
		}
		n = m
	}
	p := &Profile{Name: c.Name, Dt: dt, Samples: make([]Sample, n)}
	var cur, curNext int
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		v := c.speedAtCursor(t, &cur)
		vNext := c.speedAtCursor(t+dt, &curNext)
		p.Samples[i] = Sample{
			Time:  t,
			Speed: v,
			Accel: (vNext - v) / dt,
		}
	}
	return p
}

// speedAtCursor dispatches to speedAtFrom, keeping SpeedAt's empty-cycle
// behavior.
func (c *Cycle) speedAtCursor(t float64, idx *int) float64 {
	if len(c.Breakpoints) == 0 {
		return 0
	}
	return speedAtFrom(c.Breakpoints, t, idx)
}

// Append returns a new cycle consisting of c followed by d (both names
// joined). The appended cycle's breakpoints are shifted by c's duration.
func (c *Cycle) Append(d *Cycle) *Cycle {
	out := &Cycle{Name: c.Name + "+" + d.Name}
	out.Breakpoints = append(out.Breakpoints, c.Breakpoints...)
	offset := c.Duration()
	for i, bp := range d.Breakpoints {
		if i == 0 && len(out.Breakpoints) > 0 && bp.TimeS == 0 {
			// Merge the seam: skip the duplicate t=0 point when the speeds
			// agree; otherwise keep it an instant after the seam.
			last := out.Breakpoints[len(out.Breakpoints)-1]
			if last.SpeedKmh == bp.SpeedKmh {
				continue
			}
			out.Breakpoints = append(out.Breakpoints, Breakpoint{offset + 1e-9, bp.SpeedKmh})
			continue
		}
		out.Breakpoints = append(out.Breakpoints, Breakpoint{offset + bp.TimeS, bp.SpeedKmh})
	}
	return out
}

// RepeatCycle returns c repeated n times.
func (c *Cycle) RepeatCycle(n int) *Cycle {
	if n < 1 {
		panic(fmt.Sprintf("drivecycle: RepeatCycle(%d)", n))
	}
	out := &Cycle{Name: fmt.Sprintf("%s×%d", c.Name, n), Breakpoints: append([]Breakpoint(nil), c.Breakpoints...)}
	for k := 1; k < n; k++ {
		out = out.Append(c)
	}
	out.Name = fmt.Sprintf("%s×%d", c.Name, n)
	return out
}

// DistanceKm integrates the cycle distance exactly (trapezoids between
// breakpoints).
func (c *Cycle) DistanceKm() float64 {
	var d float64
	for i := 0; i < len(c.Breakpoints)-1; i++ {
		a, b := c.Breakpoints[i], c.Breakpoints[i+1]
		d += (units.KmhToMs(a.SpeedKmh) + units.KmhToMs(b.SpeedKmh)) / 2 * (b.TimeS - a.TimeS)
	}
	return d / 1000
}

// Validate checks monotone time and nonnegative speeds.
func (c *Cycle) Validate() error {
	if len(c.Breakpoints) < 2 {
		return fmt.Errorf("drivecycle: cycle %q needs ≥ 2 breakpoints", c.Name)
	}
	prev := math.Inf(-1)
	for i, bp := range c.Breakpoints {
		if bp.TimeS <= prev {
			return fmt.Errorf("drivecycle: cycle %q breakpoint %d: time %v not increasing", c.Name, i, bp.TimeS)
		}
		prev = bp.TimeS
		if bp.SpeedKmh < 0 {
			return fmt.Errorf("drivecycle: cycle %q breakpoint %d: negative speed", c.Name, i)
		}
	}
	return nil
}
