package drivecycle

// WLTP returns the WLTC class-3b cycle (the NEDC's successor), rebuilt as
// four statistics-matched micro-trip phases — Low, Medium, High, and
// Extra-High — like the EPA cycles in synthetic.go. Official reference:
// 1800 s, 23.27 km, average 46.5 km/h, maximum 131.3 km/h.
// The paper predates WLTP; the cycle is provided as an extension so the
// controllers can be evaluated on the current homologation profile.
func WLTP() *Cycle {
	trips := []microTrip{
		// Low phase (≈ 589 s, 3.1 km): urban stop-and-go, max 56.5 km/h.
		{peakKmh: 45, accel: 1.2, cruiseS: 30, wobbleKmh: 5, decel: 1.3, endKmh: 0, idleS: 66},
		{peakKmh: 30, accel: 1.1, cruiseS: 20, wobbleKmh: 4, decel: 1.2, endKmh: 0, idleS: 63},
		{peakKmh: 56.5, accel: 1.3, cruiseS: 45, wobbleKmh: 6, decel: 1.3, endKmh: 0, idleS: 68},
		{peakKmh: 38, accel: 1.1, cruiseS: 25, wobbleKmh: 4, decel: 1.2, endKmh: 0, idleS: 64},
		{peakKmh: 48, accel: 1.2, cruiseS: 35, wobbleKmh: 5, decel: 1.3, endKmh: 0, idleS: 70},
		// Medium phase (≈ 433 s, 4.8 km): max 76.6 km/h.
		{peakKmh: 76.6, accel: 1.2, cruiseS: 110, wobbleKmh: 7, decel: 1.2, endKmh: 0, idleS: 63},
		{peakKmh: 62, accel: 1.1, cruiseS: 80, wobbleKmh: 6, decel: 1.2, endKmh: 0, idleS: 66},
		// High phase (≈ 455 s, 7.2 km): max 97.4 km/h.
		{peakKmh: 97.4, accel: 1.1, cruiseS: 190, wobbleKmh: 8, decel: 1.1, endKmh: 40, idleS: 0},
		{peakKmh: 80, accel: 1.0, cruiseS: 130, wobbleKmh: 7, decel: 1.2, endKmh: 0, idleS: 62},
		// Extra-high phase (≈ 323 s, 8.3 km): max 131.3 km/h.
		{peakKmh: 131.3, accel: 1.0, cruiseS: 190, wobbleKmh: 10, decel: 1.2, endKmh: 0, idleS: 58},
	}
	return buildCycle("WLTP", 12, trips)
}

func init() {
	builders["WLTP"] = WLTP
}
