package drivecycle

import (
	"math"
	"strings"
	"testing"
)

// TestRegistryCycles table-drives every registered cycle through the full
// load path: ByName (including case/dash alias forms), structural
// validation, and resampling into a Profile.
func TestRegistryCycles(t *testing.T) {
	names := Names()
	// The seven core cycles must always be present; extensions (WLTP)
	// self-register on top.
	for _, want := range []string{"ECE15", "EUDC", "NEDC", "ECE_EUDC", "US06", "SC03", "UDDS"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("core cycle %s missing from registry %v", want, names)
		}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("cycle invalid: %v", err)
			}
			if c.Duration() <= 0 {
				t.Errorf("duration %v not positive", c.Duration())
			}
			if c.DistanceKm() <= 0 {
				t.Errorf("distance %v not positive", c.DistanceKm())
			}

			// Alias forms resolve to the same cycle.
			for _, alias := range []string{
				strings.ToLower(name),
				strings.ReplaceAll(name, "_", "-"),
			} {
				a, err := ByName(alias)
				if err != nil {
					t.Errorf("alias %q: %v", alias, err)
					continue
				}
				if a.Name != c.Name {
					t.Errorf("alias %q resolved to %q, want %q", alias, a.Name, c.Name)
				}
			}

			// Resampling round-trip.
			p := c.Profile(1)
			if p.Dt <= 0 {
				t.Fatalf("profile Dt %v not positive", p.Dt)
			}
			if p.Len() == 0 {
				t.Fatal("profile has no samples")
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("profile invalid: %v", err)
			}
			if math.Abs(p.Duration()-c.Duration()) > p.Dt {
				t.Errorf("profile duration %v vs cycle %v", p.Duration(), c.Duration())
			}
			for i := range p.Samples {
				s := &p.Samples[i]
				if got := c.SpeedAt(s.Time); math.Abs(s.Speed-got) > 1e-9 {
					t.Fatalf("sample %d: profile speed %v != SpeedAt(%v) = %v",
						i, s.Speed, s.Time, got)
				}
			}

			// Distance agrees between breakpoint integration and the
			// trapezoid over the resampled profile (coarse: 1 s grid).
			var distM float64
			for i := 1; i < p.Len(); i++ {
				distM += 0.5 * (p.Samples[i-1].Speed + p.Samples[i].Speed) * p.Dt
			}
			if rel := math.Abs(distM/1000-c.DistanceKm()) / c.DistanceKm(); rel > 0.01 {
				t.Errorf("profile distance %.3f km vs cycle %.3f km (%.2f%% off)",
					distM/1000, c.DistanceKm(), 100*rel)
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName("HIGHWAY9000")
	if err == nil {
		t.Fatal("unknown cycle accepted")
	}
	// The error enumerates the registry for discoverability.
	if !strings.Contains(err.Error(), "ECE_EUDC") {
		t.Errorf("error does not list available cycles: %v", err)
	}
}

func TestByNameReturnsFreshInstances(t *testing.T) {
	a, _ := ByName("NEDC")
	b, _ := ByName("NEDC")
	if a == b {
		t.Fatal("ByName returned a shared instance")
	}
	a.Breakpoints[0].SpeedKmh = 999
	if b.Breakpoints[0].SpeedKmh == 999 {
		t.Fatal("mutating one instance leaked into the other")
	}
}

func TestEvaluationCyclesFresh(t *testing.T) {
	cycles := EvaluationCycles()
	if len(cycles) != 5 {
		t.Fatalf("evaluation set has %d cycles, want 5", len(cycles))
	}
	again := EvaluationCycles()
	for i := range cycles {
		if cycles[i] == again[i] {
			t.Errorf("evaluation cycle %d shared between calls", i)
		}
	}
}

func TestTruncate(t *testing.T) {
	p := ECEEUDC().Profile(1)
	fullS := p.Duration()
	short := p.Truncate(200)
	if d := short.Duration(); d > 200 {
		t.Errorf("truncated duration %v > 200", d)
	}
	if short.Len() >= p.Len() {
		t.Errorf("truncation did not drop samples: %d vs %d", short.Len(), p.Len())
	}
	if err := short.Validate(); err != nil {
		t.Errorf("truncated profile invalid: %v", err)
	}
	// Truncation copies; the original stays intact.
	if p.Duration() != fullS {
		t.Errorf("original was mutated: duration %v, was %v", p.Duration(), fullS)
	}
	// No-op cases return the receiver unchanged.
	if q := p.Truncate(0); q != p {
		t.Error("Truncate(0) did not return the receiver")
	}
	if q := p.Truncate(p.Duration() + 10); q != p {
		t.Error("Truncate beyond the end did not return the receiver")
	}
}
