package drivecycle_test

import (
	"fmt"

	"evclimate/internal/drivecycle"
)

// ExampleByName loads a standard cycle and reports its headline numbers.
func ExampleByName() {
	cycle, err := drivecycle.ByName("NEDC")
	if err != nil {
		panic(err)
	}
	profile := cycle.Profile(1)
	s := profile.Stats()
	fmt.Printf("%s: %.0f s, %.1f km, max %.0f km/h, %d stops\n",
		cycle.Name, s.Duration, s.DistanceKm, s.MaxSpeedKmh, s.Stops)
	// Output:
	// NEDC: 1180 s, 10.8 km, max 120 km/h, 13 stops
}

// ExampleRoute_Profile builds a drive profile from GPS-style route
// segments with weather attached.
func ExampleRoute_Profile() {
	route := &drivecycle.Route{
		Name: "school-run",
		Segments: []drivecycle.RouteSegment{
			{LengthKm: 1, SpeedKmh: 40, AmbientC: 30, SolarW: 300, StopAtEnd: true},
			{LengthKm: 3, SpeedKmh: 60, AmbientC: 30, SolarW: 300},
		},
	}
	profile, err := route.Profile(1)
	if err != nil {
		panic(err)
	}
	s := profile.Stats()
	fmt.Printf("%.1f km at up to %.0f km/h, ambient %.0f °C\n",
		s.DistanceKm, s.MaxSpeedKmh, profile.Samples[0].AmbientC)
	// Output:
	// 4.2 km at up to 60 km/h, ambient 30 °C
}
