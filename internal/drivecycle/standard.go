package drivecycle

// This file defines the regulatory drive cycles used in the paper's
// evaluation (Sec. IV): NEDC, ECE_EUDC, US06, SC03, UDDS.
//
// The European cycles (ECE-15 urban cycle, EUDC extra-urban cycle, and
// their compositions) are officially specified as piecewise-linear speed
// ramps, so the breakpoint tables below are the cycle definitions, not
// approximations.
//
// The EPA transient cycles (US06, SC03, UDDS) are officially distributed
// as second-by-second measured traces that are not redistributable here;
// see synthetic.go for the matched-statistics reconstructions (the
// substitution is documented in DESIGN.md §3).

// ECE15 returns the ECE-15 urban driving cycle (UDC): 195 s, ≈ 1 km,
// max 50 km/h, three stop-start micro-trips.
func ECE15() *Cycle {
	return &Cycle{
		Name: "ECE15",
		Breakpoints: []Breakpoint{
			{0, 0}, {11, 0},
			{15, 15}, {23, 15}, {28, 0},
			{49, 0},
			{61, 32}, {85, 32}, {96, 0},
			{117, 0},
			{143, 50}, {155, 50}, {163, 35}, {176, 35}, {188, 0},
			{195, 0},
		},
	}
}

// EUDC returns the Extra-Urban Driving Cycle: 400 s, ≈ 7 km,
// max 120 km/h.
func EUDC() *Cycle {
	return &Cycle{
		Name: "EUDC",
		Breakpoints: []Breakpoint{
			{0, 0}, {20, 0},
			{61, 70}, {111, 70},
			{119, 50}, {188, 50},
			{201, 70}, {251, 70},
			{286, 100}, {316, 100},
			{336, 120}, {346, 120},
			{380, 0}, {400, 0},
		},
	}
}

// NEDC returns the New European Driving Cycle: four ECE-15 urban cycles
// followed by one EUDC, 1180 s total, ≈ 11 km.
func NEDC() *Cycle {
	c := ECE15().RepeatCycle(4).Append(EUDC())
	c.Name = "NEDC"
	return c
}

// ECEEUDC returns the combined single urban + extra-urban cycle
// (1 × ECE-15 followed by EUDC, 595 s). The paper lists ECE_EUDC as a
// profile distinct from NEDC; we take it as the single-repetition
// composition.
func ECEEUDC() *Cycle {
	c := ECE15().Append(EUDC())
	c.Name = "ECE_EUDC"
	return c
}
