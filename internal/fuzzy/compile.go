package fuzzy

import (
	"fmt"
	"math"
	"sort"
)

// Compiled is a validate-once, allocation-free evaluator for a System.
// Evaluate on the interpreted System validates the rule base, builds an
// activation map, and re-evaluates every output membership function at
// every centroid sample on each call — fine for a demo, fatal in a
// batched sweep that calls it millions of times. Compile hoists all of
// that: validation happens once, inputs arrive as a slice in InputNames
// order, rule antecedents are index-resolved, and the output terms'
// degrees at the centroid samples are precomputed into a flat table.
//
// The inference arithmetic is unchanged — same clamp, same min-AND, same
// max aggregation, same Mamdani clip, same centroid accumulation order —
// so Compiled.Evaluate returns bit-identical results to System.Evaluate
// (max and min are order-independent, and only fired terms, which the map
// path also restricts itself to, enter the aggregation).
type Compiled struct {
	names      []string
	mins, maxs []float64

	rules []compiledRule
	nOut  int // number of output terms

	// Centroid table: xs[i] is the i-th output sample, deg[j*len(xs)+i]
	// the j-th output term's membership degree there.
	xs  []float64
	deg []float64

	// Per-call scratch (not safe for concurrent use; Clone shares the
	// tables above and refreshes only these).
	act      []float64
	firedIdx []int
	firedW   []float64
}

type compiledRule struct {
	conds []compiledCond
	out   int
}

type compiledCond struct {
	in int
	mf MFDegreeFunc
}

// MFDegreeFunc is a monomorphized membership function: calling through a
// concrete func value instead of the MF interface lets rule evaluation
// stay devirtualized in the hot loop while producing the same bits.
type MFDegreeFunc func(x float64) float64

// Compile validates the system once and builds the allocation-free
// evaluator. The compiled form is a snapshot: rules or terms added to
// the System afterwards are not reflected.
func (s *System) Compile() (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	names := s.InputNames()
	idx := make(map[string]int, len(names))
	c := &Compiled{
		names: names,
		mins:  make([]float64, len(names)),
		maxs:  make([]float64, len(names)),
	}
	for i, n := range names {
		idx[n] = i
		c.mins[i] = s.inputs[n].Min
		c.maxs[i] = s.inputs[n].Max
	}

	// Output terms in sorted-name order: the index layout is stable for
	// equal systems, and aggregation is order-independent anyway.
	outTerms := make([]string, 0, len(s.output.Terms))
	for name := range s.output.Terms {
		outTerms = append(outTerms, name)
	}
	sort.Strings(outTerms)
	outIdx := make(map[string]int, len(outTerms))
	for j, name := range outTerms {
		outIdx[name] = j
	}
	c.nOut = len(outTerms)

	c.rules = make([]compiledRule, len(s.rules))
	for ri, r := range s.rules {
		cr := compiledRule{out: outIdx[r.Then.Term], conds: make([]compiledCond, len(r.If))}
		for ci, cond := range r.If {
			cr.conds[ci] = compiledCond{in: idx[cond.Var], mf: s.inputs[cond.Var].Terms[cond.Term].Degree}
		}
		c.rules[ri] = cr
	}

	n := s.Resolution
	if n < 3 {
		n = 201
	}
	c.xs = make([]float64, n)
	c.deg = make([]float64, c.nOut*n)
	for i := 0; i < n; i++ {
		c.xs[i] = s.output.Min + (s.output.Max-s.output.Min)*float64(i)/float64(n-1)
	}
	for j, name := range outTerms {
		mf := s.output.Terms[name]
		for i := 0; i < n; i++ {
			c.deg[j*n+i] = mf.Degree(c.xs[i])
		}
	}

	c.act = make([]float64, c.nOut)
	c.firedIdx = make([]int, c.nOut)
	c.firedW = make([]float64, c.nOut)
	return c, nil
}

// Clone returns an evaluator sharing the compiled tables but with its
// own scratch, so lanes (or goroutines) can evaluate concurrently
// without recompiling.
func (c *Compiled) Clone() *Compiled {
	out := *c
	out.act = make([]float64, c.nOut)
	out.firedIdx = make([]int, c.nOut)
	out.firedW = make([]float64, c.nOut)
	return &out
}

// InputNames returns the expected input order (the System's sorted input
// names).
func (c *Compiled) InputNames() []string { return c.names }

// Evaluate runs Mamdani inference for crisp inputs given in InputNames
// order and returns the centroid-defuzzified output, bit-identical to
// System.Evaluate with the same values keyed by name. It allocates
// nothing.
func (c *Compiled) Evaluate(in []float64) (float64, error) {
	if len(in) != len(c.mins) {
		return 0, fmt.Errorf("fuzzy: %d inputs, want %d", len(in), len(c.mins))
	}
	act := c.act
	for j := range act {
		act[j] = 0
	}
	anyFired := false
	for ri := range c.rules {
		r := &c.rules[ri]
		w := 1.0
		for ci := range r.conds {
			cd := &r.conds[ci]
			x := in[cd.in]
			x = math.Max(c.mins[cd.in], math.Min(c.maxs[cd.in], x))
			d := cd.mf(x)
			if d < w {
				w = d
			}
		}
		if w > 0 {
			anyFired = true
			if w > act[r.out] {
				act[r.out] = w
			}
		}
	}
	if !anyFired {
		return 0, ErrNoActivation
	}
	// Compact the fired terms: unfired terms contribute exactly 0 to the
	// max aggregation, so skipping them changes no bits and keeps the
	// centroid loop short (typically ≤ 4 of the output terms fire).
	nf := 0
	for j, w := range act {
		if w > 0 {
			c.firedIdx[nf] = j
			c.firedW[nf] = w
			nf++
		}
	}
	n := len(c.xs)
	var num, den float64
	for i := 0; i < n; i++ {
		var mu float64
		for f := 0; f < nf; f++ {
			d := c.deg[c.firedIdx[f]*n+i]
			if w := c.firedW[f]; d > w {
				d = w // Mamdani clip
			}
			if d > mu {
				mu = d
			}
		}
		num += mu * c.xs[i]
		den += mu
	}
	if den == 0 {
		return 0, ErrNoActivation
	}
	return num / den, nil
}
