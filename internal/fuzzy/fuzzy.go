// Package fuzzy implements a Mamdani fuzzy inference system — triangular
// and trapezoidal membership functions, min/max inference, and centroid
// defuzzification. It is the substrate for the fuzzy-based temperature
// control baseline the paper compares against ([10], Ibrahim et al.,
// "Fuzzy-based Temperature and Humidity Control for HVAC of Electric
// Vehicle").
package fuzzy

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// MF is a membership function: Degree returns μ(x) in [0, 1].
type MF interface {
	Degree(x float64) float64
}

// Triangle is a triangular membership function with feet at A and C and
// peak at B (A ≤ B ≤ C). A == B or B == C produce shoulder shapes.
type Triangle struct {
	A, B, C float64
}

// Degree implements MF.
func (t Triangle) Degree(x float64) float64 {
	switch {
	case x <= t.A || x >= t.C:
		// The peak can sit on a foot (shoulder triangle).
		if x == t.B {
			return 1
		}
		return 0
	case x == t.B:
		return 1
	case x < t.B:
		return (x - t.A) / (t.B - t.A)
	default:
		return (t.C - x) / (t.C - t.B)
	}
}

// Trapezoid is a trapezoidal membership function with feet at A and D and
// plateau between B and C (A ≤ B ≤ C ≤ D).
type Trapezoid struct {
	A, B, C, D float64
}

// Degree implements MF.
func (t Trapezoid) Degree(x float64) float64 {
	switch {
	case x < t.A || x > t.D:
		return 0
	case x >= t.B && x <= t.C:
		return 1
	case x < t.B:
		if t.B == t.A {
			return 1
		}
		return (x - t.A) / (t.B - t.A)
	default:
		if t.D == t.C {
			return 1
		}
		return (t.D - x) / (t.D - t.C)
	}
}

// Variable is a linguistic variable over a universe [Min, Max] with named
// terms.
type Variable struct {
	// Name identifies the variable in rules.
	Name string
	// Min and Max bound the universe of discourse.
	Min, Max float64
	// Terms maps linguistic term names to membership functions.
	Terms map[string]MF
}

// NewVariable builds a variable, validating the universe.
func NewVariable(name string, min, max float64) *Variable {
	if max <= min {
		panic(fmt.Sprintf("fuzzy: variable %q universe [%v, %v] invalid", name, min, max))
	}
	return &Variable{Name: name, Min: min, Max: max, Terms: make(map[string]MF)}
}

// AddTerm registers a term and returns the variable for chaining.
func (v *Variable) AddTerm(term string, mf MF) *Variable {
	v.Terms[term] = mf
	return v
}

// Cond is one atomic condition "Var is Term".
type Cond struct {
	Var, Term string
}

// Rule is "IF all antecedents THEN consequent" with min-AND semantics.
type Rule struct {
	// If lists the antecedent conditions, combined with AND (min).
	If []Cond
	// Then names the output term this rule activates.
	Then Cond
}

// System is a complete Mamdani controller with a single output.
type System struct {
	inputs map[string]*Variable
	output *Variable
	rules  []Rule
	// Resolution is the number of output-universe samples for centroid
	// defuzzification (default 201).
	Resolution int
}

// NewSystem assembles a system from input variables and one output
// variable.
func NewSystem(output *Variable, inputs ...*Variable) *System {
	s := &System{inputs: make(map[string]*Variable), output: output, Resolution: 201}
	for _, in := range inputs {
		s.inputs[in.Name] = in
	}
	return s
}

// AddRule appends a rule and returns the system for chaining.
func (s *System) AddRule(r Rule) *System {
	s.rules = append(s.rules, r)
	return s
}

// Rules returns the number of registered rules.
func (s *System) Rules() int { return len(s.rules) }

// ErrNoActivation is returned when no rule fires for the given inputs,
// which indicates incomplete rule coverage of the input space.
var ErrNoActivation = errors.New("fuzzy: no rule activated")

// Validate checks that every rule references existing variables and
// terms.
func (s *System) Validate() error {
	if s.output == nil {
		return errors.New("fuzzy: system has no output variable")
	}
	if len(s.rules) == 0 {
		return errors.New("fuzzy: system has no rules")
	}
	for i, r := range s.rules {
		if len(r.If) == 0 {
			return fmt.Errorf("fuzzy: rule %d has no antecedents", i)
		}
		for _, c := range r.If {
			v, ok := s.inputs[c.Var]
			if !ok {
				return fmt.Errorf("fuzzy: rule %d references unknown input %q", i, c.Var)
			}
			if _, ok := v.Terms[c.Term]; !ok {
				return fmt.Errorf("fuzzy: rule %d references unknown term %q of %q", i, c.Term, c.Var)
			}
		}
		if r.Then.Var != s.output.Name {
			return fmt.Errorf("fuzzy: rule %d consequent variable %q is not the output %q", i, r.Then.Var, s.output.Name)
		}
		if _, ok := s.output.Terms[r.Then.Term]; !ok {
			return fmt.Errorf("fuzzy: rule %d references unknown output term %q", i, r.Then.Term)
		}
	}
	return nil
}

// Evaluate runs Mamdani inference for crisp inputs (clamped to each
// variable's universe) and returns the centroid-defuzzified output.
func (s *System) Evaluate(in map[string]float64) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	// Rule activations: min over antecedents.
	activation := make(map[string]float64) // output term → max activation
	anyFired := false
	for _, r := range s.rules {
		w := 1.0
		for _, c := range r.If {
			v := s.inputs[c.Var]
			x, ok := in[c.Var]
			if !ok {
				return 0, fmt.Errorf("fuzzy: missing input %q", c.Var)
			}
			x = math.Max(v.Min, math.Min(v.Max, x))
			d := v.Terms[c.Term].Degree(x)
			if d < w {
				w = d
			}
		}
		if w > 0 {
			anyFired = true
			if w > activation[r.Then.Term] {
				activation[r.Then.Term] = w
			}
		}
	}
	if !anyFired {
		return 0, ErrNoActivation
	}
	// Aggregate (max of clipped output MFs) and take the centroid.
	n := s.Resolution
	if n < 3 {
		n = 201
	}
	var num, den float64
	for i := 0; i < n; i++ {
		x := s.output.Min + (s.output.Max-s.output.Min)*float64(i)/float64(n-1)
		var mu float64
		for term, w := range activation {
			d := s.output.Terms[term].Degree(x)
			if d > w {
				d = w // Mamdani clip
			}
			if d > mu {
				mu = d
			}
		}
		num += mu * x
		den += mu
	}
	if den == 0 {
		return 0, ErrNoActivation
	}
	return num / den, nil
}

// InputNames returns the registered input variable names, sorted.
func (s *System) InputNames() []string {
	out := make([]string, 0, len(s.inputs))
	for n := range s.inputs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
