package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTriangleDegrees(t *testing.T) {
	tri := Triangle{0, 5, 10}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {2.5, 0.5}, {5, 1}, {7.5, 0.5}, {10, 0}, {11, 0},
	}
	for _, c := range cases {
		if got := tri.Degree(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Triangle.Degree(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestTriangleShoulders(t *testing.T) {
	// Left shoulder: A == B.
	left := Triangle{0, 0, 10}
	if got := left.Degree(0); got != 1 {
		t.Errorf("left shoulder at peak = %v, want 1", got)
	}
	if got := left.Degree(5); got != 0.5 {
		t.Errorf("left shoulder mid = %v, want 0.5", got)
	}
	// Right shoulder: B == C.
	right := Triangle{0, 10, 10}
	if got := right.Degree(10); got != 1 {
		t.Errorf("right shoulder at peak = %v, want 1", got)
	}
	if got := right.Degree(5); got != 0.5 {
		t.Errorf("right shoulder mid = %v, want 0.5", got)
	}
}

func TestTrapezoidDegrees(t *testing.T) {
	tr := Trapezoid{0, 2, 8, 10}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {1, 0.5}, {2, 1}, {5, 1}, {8, 1}, {9, 0.5}, {10, 1}, {11, 0},
	}
	// Note x=10 with D==10: (D−x)/(D−C) = 0 → actually want 0 there.
	cases[7].want = 0
	for _, c := range cases {
		if got := tr.Degree(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Trapezoid.Degree(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestMFDegreesInUnitInterval(t *testing.T) {
	tri := Triangle{-3, 1, 7}
	trap := Trapezoid{-5, -1, 2, 9}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		for _, mf := range []MF{tri, trap} {
			d := mf.Degree(x)
			if d < 0 || d > 1 || math.IsNaN(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildThermostat is a small heating controller: the hotter the error
// (setpoint − temp), the more heat.
func buildThermostat() *System {
	errV := NewVariable("err", -10, 10).
		AddTerm("cold", Triangle{0, 10, 10}).
		AddTerm("ok", Triangle{-2, 0, 2}).
		AddTerm("hot", Triangle{-10, -10, 0})
	heat := NewVariable("heat", 0, 100).
		AddTerm("off", Triangle{0, 0, 40}).
		AddTerm("low", Triangle{20, 50, 80}).
		AddTerm("high", Triangle{60, 100, 100})
	return NewSystem(heat, errV).
		AddRule(Rule{If: []Cond{{"err", "cold"}}, Then: Cond{"heat", "high"}}).
		AddRule(Rule{If: []Cond{{"err", "ok"}}, Then: Cond{"heat", "low"}}).
		AddRule(Rule{If: []Cond{{"err", "hot"}}, Then: Cond{"heat", "off"}})
}

func TestSystemEndpoints(t *testing.T) {
	s := buildThermostat()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Very cold → high heat.
	high, err := s.Evaluate(map[string]float64{"err": 10})
	if err != nil {
		t.Fatal(err)
	}
	if high < 70 {
		t.Errorf("cold output = %v, want ≥ 70", high)
	}
	// Very hot → essentially off.
	off, err := s.Evaluate(map[string]float64{"err": -10})
	if err != nil {
		t.Fatal(err)
	}
	if off > 30 {
		t.Errorf("hot output = %v, want ≤ 30", off)
	}
	// Neutral → mid output.
	mid, err := s.Evaluate(map[string]float64{"err": 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mid-50) > 5 {
		t.Errorf("neutral output = %v, want ≈ 50", mid)
	}
}

func TestSystemMonotone(t *testing.T) {
	// For this rule base the output should increase with the error.
	s := buildThermostat()
	prev := -1.0
	for e := -10.0; e <= 10; e += 0.5 {
		out, err := s.Evaluate(map[string]float64{"err": e})
		if err != nil {
			t.Fatalf("err=%v: %v", e, err)
		}
		if out < prev-1e-9 {
			t.Errorf("output decreased at err=%v: %v < %v", e, out, prev)
		}
		prev = out
	}
}

func TestOutputWithinUniverse(t *testing.T) {
	s := buildThermostat()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		out, err := s.Evaluate(map[string]float64{"err": math.Mod(raw, 25)})
		if err != nil {
			return err == ErrNoActivation
		}
		return out >= 0 && out <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoInputAND(t *testing.T) {
	// AND semantics: the rule fires at the minimum of the two degrees.
	a := NewVariable("a", 0, 1).AddTerm("hi", Triangle{0, 1, 1})
	b := NewVariable("b", 0, 1).AddTerm("hi", Triangle{0, 1, 1})
	out := NewVariable("y", 0, 1).
		AddTerm("hi", Triangle{0, 1, 1}).
		AddTerm("lo", Triangle{0, 0, 1})
	s := NewSystem(out, a, b).
		AddRule(Rule{If: []Cond{{"a", "hi"}, {"b", "hi"}}, Then: Cond{"y", "hi"}}).
		// Complementary rule so something always fires.
		AddRule(Rule{If: []Cond{{"a", "hi"}}, Then: Cond{"y", "lo"}})
	// b low limits the AND despite a high.
	weak, err := s.Evaluate(map[string]float64{"a": 1, "b": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := s.Evaluate(map[string]float64{"a": 1, "b": 1})
	if err != nil {
		t.Fatal(err)
	}
	if weak >= strong {
		t.Errorf("AND not limiting: weak %v ≥ strong %v", weak, strong)
	}
}

func TestValidationErrors(t *testing.T) {
	out := NewVariable("y", 0, 1).AddTerm("t", Triangle{0, 0.5, 1})
	in := NewVariable("x", 0, 1).AddTerm("t", Triangle{0, 0.5, 1})

	if err := NewSystem(out, in).Validate(); err == nil {
		t.Error("empty rule base accepted")
	}
	s := NewSystem(out, in).AddRule(Rule{If: []Cond{{"nope", "t"}}, Then: Cond{"y", "t"}})
	if err := s.Validate(); err == nil {
		t.Error("unknown input variable accepted")
	}
	s2 := NewSystem(out, in).AddRule(Rule{If: []Cond{{"x", "nope"}}, Then: Cond{"y", "t"}})
	if err := s2.Validate(); err == nil {
		t.Error("unknown input term accepted")
	}
	s3 := NewSystem(out, in).AddRule(Rule{If: []Cond{{"x", "t"}}, Then: Cond{"z", "t"}})
	if err := s3.Validate(); err == nil {
		t.Error("wrong consequent variable accepted")
	}
	s4 := NewSystem(out, in).AddRule(Rule{If: []Cond{{"x", "t"}}, Then: Cond{"y", "nope"}})
	if err := s4.Validate(); err == nil {
		t.Error("unknown output term accepted")
	}
	s5 := NewSystem(out, in).AddRule(Rule{Then: Cond{"y", "t"}})
	if err := s5.Validate(); err == nil {
		t.Error("rule without antecedents accepted")
	}
}

func TestMissingInput(t *testing.T) {
	s := buildThermostat()
	if _, err := s.Evaluate(map[string]float64{}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestNoActivation(t *testing.T) {
	// A gappy rule base: only covers err > 5.
	errV := NewVariable("err", -10, 10).AddTerm("veryhot", Triangle{5, 10, 10})
	heat := NewVariable("heat", 0, 100).AddTerm("high", Triangle{60, 100, 100})
	s := NewSystem(heat, errV).
		AddRule(Rule{If: []Cond{{"err", "veryhot"}}, Then: Cond{"heat", "high"}})
	if _, err := s.Evaluate(map[string]float64{"err": 0}); err != ErrNoActivation {
		t.Errorf("err = %v, want ErrNoActivation", err)
	}
}

func TestInputClamping(t *testing.T) {
	s := buildThermostat()
	inRange, err := s.Evaluate(map[string]float64{"err": 10})
	if err != nil {
		t.Fatal(err)
	}
	beyond, err := s.Evaluate(map[string]float64{"err": 1000})
	if err != nil {
		t.Fatal(err)
	}
	if inRange != beyond {
		t.Errorf("input not clamped: %v vs %v", inRange, beyond)
	}
}

func TestInputNames(t *testing.T) {
	a := NewVariable("b-var", 0, 1).AddTerm("t", Triangle{0, 0.5, 1})
	b := NewVariable("a-var", 0, 1).AddTerm("t", Triangle{0, 0.5, 1})
	out := NewVariable("y", 0, 1).AddTerm("t", Triangle{0, 0.5, 1})
	s := NewSystem(out, a, b)
	names := s.InputNames()
	if len(names) != 2 || names[0] != "a-var" || names[1] != "b-var" {
		t.Errorf("InputNames = %v", names)
	}
}

func TestNewVariablePanicsOnBadUniverse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted universe accepted")
		}
	}()
	NewVariable("bad", 1, 0)
}
