package fuzzy

import (
	"errors"
	"math/rand"
	"testing"
)

// testSystem builds the 3×3 controller shape the climate baseline uses:
// two inputs, five output terms, nine rules.
func testSystem() *System {
	errV := NewVariable("err", -6, 6).
		AddTerm("neg", Triangle{A: -6, B: -6, C: 0}).
		AddTerm("zero", Triangle{A: -0.8, B: 0, C: 0.8}).
		AddTerm("pos", Triangle{A: 0, B: 6, C: 6})
	dErrV := NewVariable("derr", -0.2, 0.2).
		AddTerm("falling", Triangle{A: -0.2, B: -0.2, C: 0}).
		AddTerm("steady", Triangle{A: -0.03, B: 0, C: 0.03}).
		AddTerm("rising", Triangle{A: 0, B: 0.2, C: 0.2})
	outV := NewVariable("u", -1, 1).
		AddTerm("heathard", Triangle{A: -1, B: -1, C: -0.5}).
		AddTerm("heat", Triangle{A: -1, B: -0.5, C: 0}).
		AddTerm("idle", Triangle{A: -0.15, B: 0, C: 0.15}).
		AddTerm("cool", Triangle{A: 0, B: 0.5, C: 1}).
		AddTerm("coolhard", Triangle{A: 0.5, B: 1, C: 1})
	rule := func(e, d, u string) Rule {
		return Rule{If: []Cond{{Var: "err", Term: e}, {Var: "derr", Term: d}}, Then: Cond{Var: "u", Term: u}}
	}
	return NewSystem(outV, errV, dErrV).
		AddRule(rule("pos", "rising", "coolhard")).
		AddRule(rule("pos", "steady", "coolhard")).
		AddRule(rule("pos", "falling", "cool")).
		AddRule(rule("zero", "rising", "cool")).
		AddRule(rule("zero", "steady", "idle")).
		AddRule(rule("zero", "falling", "heat")).
		AddRule(rule("neg", "rising", "heat")).
		AddRule(rule("neg", "steady", "heathard")).
		AddRule(rule("neg", "falling", "heathard"))
}

// TestCompiledMatchesEvaluate is the bit-equivalence property: over a
// dense random sweep of the input space (including out-of-universe
// values, which both paths clamp), the compiled evaluator returns
// exactly the interpreted Evaluate's bits.
func TestCompiledMatchesEvaluate(t *testing.T) {
	sys := testSystem()
	c, err := sys.Compile()
	if err != nil {
		t.Fatal(err)
	}
	names := c.InputNames()
	if len(names) != 2 || names[0] != "derr" || names[1] != "err" {
		t.Fatalf("InputNames = %v, want [derr err]", names)
	}
	rng := rand.New(rand.NewSource(7))
	in := make([]float64, 2)
	for i := 0; i < 5000; i++ {
		e := -8 + rng.Float64()*16     // beyond the ±6 universe
		de := -0.3 + rng.Float64()*0.6 // beyond the ±0.2 universe
		want, errWant := sys.Evaluate(map[string]float64{"err": e, "derr": de})
		in[0], in[1] = de, e // InputNames order: derr, err
		got, errGot := c.Evaluate(in)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("e=%v de=%v: error mismatch: interpreted %v, compiled %v", e, de, errWant, errGot)
		}
		if got != want {
			t.Fatalf("e=%v de=%v: compiled %v != interpreted %v (diff %g)", e, de, got, want, got-want)
		}
	}
}

// TestCompiledZeroAlloc pins that the hot path allocates nothing.
func TestCompiledZeroAlloc(t *testing.T) {
	c, err := testSystem().Compile()
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.01, 2.5}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := c.Evaluate(in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Evaluate allocated %v times per call, want 0", allocs)
	}
}

// TestCompiledClone pins that clones share tables but not scratch:
// interleaved evaluations from two clones match fresh evaluations.
func TestCompiledClone(t *testing.T) {
	sys := testSystem()
	c1, err := sys.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c2 := c1.Clone()
	a1, _ := c1.Evaluate([]float64{0.1, 3})
	a2, _ := c2.Evaluate([]float64{-0.1, -3})
	b1, _ := c1.Evaluate([]float64{0.1, 3})
	b2, _ := c2.Evaluate([]float64{-0.1, -3})
	if a1 != b1 || a2 != b2 {
		t.Errorf("clone interference: %v/%v then %v/%v", a1, a2, b1, b2)
	}
}

// TestCompiledErrors pins argument validation and the no-activation path.
func TestCompiledErrors(t *testing.T) {
	c, err := testSystem().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate([]float64{1}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := (&System{}).Compile(); err == nil {
		t.Error("invalid system compiled")
	}
	// A gappy rule base can fail to fire; both paths must agree.
	gap := NewSystem(
		NewVariable("y", 0, 1).AddTerm("t", Triangle{A: 0, B: 0.5, C: 1}),
		NewVariable("x", 0, 10).AddTerm("low", Triangle{A: 0, B: 1, C: 2}),
	).AddRule(Rule{If: []Cond{{Var: "x", Term: "low"}}, Then: Cond{Var: "y", Term: "t"}})
	gc, err := gap.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gc.Evaluate([]float64{5}); !errors.Is(err, ErrNoActivation) {
		t.Errorf("want ErrNoActivation, got %v", err)
	}
}
