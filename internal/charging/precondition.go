package charging

import (
	"fmt"
	"math"

	"evclimate/internal/battery"
	"evclimate/internal/thermal"
	"evclimate/internal/units"
)

// This file adds depot preconditioning to the CC-CV charger: while the
// vehicle is plugged in, the battery-branch heater warms the pack toward
// a departure setpoint using wall energy instead of pack energy, and the
// charging current's own Joule losses contribute self-heating. Leaving
// the depot with a warm pack is the cheapest lifetime lever in deep cold
// — the drive then starts inside (or near) the pack's low-stress
// temperature band without spending range on resistive heating, and cold
// cycling (lithium-plating stress) is avoided from the first meter.

// PreconditionParams configures a plugged-in preconditioning session.
type PreconditionParams struct {
	// Charger is the CC-CV profile supplying both the pack and the
	// battery heater.
	Charger Params
	// Thermal is the pack thermal network; the pack starts soaked at
	// AmbientC unless the config pins an explicit initial temperature.
	Thermal thermal.Config
	// AmbientC is the depot ambient (and the parked cabin temperature).
	AmbientC float64
	// TargetPackC is the departure pack temperature the depot heater aims
	// for. Default 15 °C (inside the low-stress band).
	TargetPackC float64
	// MaxHoldS bounds the plugged-in hold after charge completion while
	// the pack is still below target. Default 3600 s.
	MaxHoldS float64
	// Dt is the co-simulation step. Default 10 s.
	Dt float64
}

// PreconditionResult summarizes one preconditioning session.
type PreconditionResult struct {
	// Charge is the underlying CC-CV session.
	Charge *Result
	// PackC is the pack temperature at each Dt sample, aligned with (and
	// possibly longer than) the charge trace when the session holds past
	// charge completion.
	PackC []float64
	// FinalPackC is the pack temperature at unplug.
	FinalPackC float64
	// TargetReached reports whether the pack met the departure setpoint.
	TargetReached bool
	// HeaterEnergyKWh is the wall energy spent on the battery heater.
	HeaterEnergyKWh float64
	// WallEnergyKWh is the total wall draw: charge plus heater.
	WallEnergyKWh float64
	// DurationS is the total plugged-in time including any hold.
	DurationS float64
}

// Precondition co-simulates a CC-CV charge with the pack thermal network:
// the charging current's Joule losses self-heat the pack while the
// battery heater, powered from the wall at the charger's efficiency, runs
// until the pack reaches the departure setpoint. The session holds after
// charge completion (up to MaxHoldS) if the pack is still cold.
func Precondition(p PreconditionParams, pack battery.Params, fromSoC, toSoC float64) (*PreconditionResult, error) {
	if p.TargetPackC == 0 {
		p.TargetPackC = 15
	}
	if p.MaxHoldS == 0 {
		p.MaxHoldS = 3600
	}
	if p.Dt == 0 {
		p.Dt = 10
	}
	if math.IsNaN(p.TargetPackC) || math.IsInf(p.TargetPackC, 0) {
		return nil, fmt.Errorf("charging: precondition target %v must be finite", p.TargetPackC)
	}
	if p.MaxHoldS < 0 {
		return nil, fmt.Errorf("charging: negative hold budget %v", p.MaxHoldS)
	}
	chg, err := Charge(p.Charger, pack, fromSoC, toSoC, p.Dt)
	if err != nil {
		return nil, err
	}
	st, err := thermal.NewState(p.Thermal, p.AmbientC)
	if err != nil {
		return nil, err
	}

	res := &PreconditionResult{Charge: chg, PackC: []float64{st.PackC()}}
	var heaterJ float64
	step := func(currentA float64) {
		jouleW := currentA * currentA * st.PackResistanceOhm()
		var heatW float64
		if st.PackC() < p.TargetPackC {
			heatW = p.Thermal.Network.MaxHeaterW
		}
		fl := st.Step(p.AmbientC, p.AmbientC, jouleW, heatW, 0, p.Dt)
		heaterJ += fl.HeaterElecW * p.Dt / p.Charger.Efficiency
		res.PackC = append(res.PackC, st.PackC())
		res.DurationS += p.Dt
	}

	// The charge phase: per-step pack current recovered from the SoC
	// increments (Charge does not expose the current trace).
	ahPerPct := pack.NominalCapacityAh * units.SecondsPerHour / 100
	for k := 1; k < len(chg.SoCTrace); k++ {
		step((chg.SoCTrace[k] - chg.SoCTrace[k-1]) * ahPerPct / p.Dt)
	}
	// The hold phase: still plugged in, heater only, until the pack meets
	// the setpoint or the hold budget runs out.
	for hold := 0.0; st.PackC() < p.TargetPackC && hold < p.MaxHoldS; hold += p.Dt {
		step(0)
	}

	res.FinalPackC = st.PackC()
	res.TargetReached = res.FinalPackC >= p.TargetPackC
	res.HeaterEnergyKWh = units.JToKWh(heaterJ)
	res.WallEnergyKWh = chg.WallEnergyKWh + res.HeaterEnergyKWh
	return res, nil
}
