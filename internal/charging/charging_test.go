package charging

import (
	"math"
	"testing"

	"evclimate/internal/battery"
)

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{Level2(), DCFast()} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	cases := []func(*Params){
		func(p *Params) { p.MaxCurrentA = 0 },
		func(p *Params) { p.CVThresholdSoC = 0 },
		func(p *Params) { p.CVThresholdSoC = 150 },
		func(p *Params) { p.TaperTimeConstS = 0 },
		func(p *Params) { p.Efficiency = 0 },
		func(p *Params) { p.Efficiency = 1.2 },
		func(p *Params) { p.TerminationFrac = 0 },
		func(p *Params) { p.TerminationFrac = 1 },
	}
	for i, mutate := range cases {
		p := Level2()
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestChargeArguments(t *testing.T) {
	pack := battery.LeafPack()
	if _, err := Charge(Level2(), pack, 80, 50, 10); err == nil {
		t.Error("from > to accepted")
	}
	if _, err := Charge(Level2(), pack, -5, 50, 10); err == nil {
		t.Error("negative from accepted")
	}
	if _, err := Charge(Level2(), pack, 50, 120, 10); err == nil {
		t.Error("to > 100 accepted")
	}
	if _, err := Charge(Level2(), pack, 50, 90, 0); err == nil {
		t.Error("dt = 0 accepted")
	}
}

func TestConstantCurrentPhaseDuration(t *testing.T) {
	// Charging 30→80 % at 18 A on a 66.2 Ah pack stays in CC (threshold
	// 85 %): time = 0.5·66.2/18 h ≈ 6620 s.
	pack := battery.LeafPack()
	res, err := Charge(Level2(), pack, 30, 80, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 66.2 / 18 * 3600
	if math.Abs(res.DurationS-want) > 60 {
		t.Errorf("CC duration = %v s, want ≈ %v", res.DurationS, want)
	}
	if math.Abs(res.FinalSoC-80) > 0.1 {
		t.Errorf("final SoC = %v, want 80", res.FinalSoC)
	}
}

func TestWallEnergyIncludesLosses(t *testing.T) {
	pack := battery.LeafPack()
	res, err := Charge(Level2(), pack, 30, 80, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Pack-side energy: 50 % of 23.8 kWh ≈ 11.9 kWh; wall side ≈ /0.9.
	packKWh := 0.5 * pack.EnergyKWh()
	if res.WallEnergyKWh < packKWh {
		t.Errorf("wall energy %v below pack energy %v (missing losses)", res.WallEnergyKWh, packKWh)
	}
	if res.WallEnergyKWh > packKWh/0.9*1.02 {
		t.Errorf("wall energy %v implausibly high", res.WallEnergyKWh)
	}
}

func TestTaperSlowsNearFull(t *testing.T) {
	pack := battery.LeafPack()
	// 80→95 crosses into the CV taper at 85 %.
	res, err := Charge(Level2(), pack, 80, 95, 10)
	if err != nil {
		t.Fatal(err)
	}
	// SoC rate in the first 5 minutes vs the last 5 minutes.
	n := len(res.SoCTrace)
	if n < 80 {
		t.Fatalf("trace too short: %d", n)
	}
	early := res.SoCTrace[30] - res.SoCTrace[0]
	late := res.SoCTrace[n-1] - res.SoCTrace[n-31]
	if late >= early {
		t.Errorf("no taper: early rate %v, late rate %v", early, late)
	}
}

func TestTerminationByTaper(t *testing.T) {
	// Asking for 100 % terminates on the taper threshold short of it.
	pack := battery.LeafPack()
	res, err := Charge(Level2(), pack, 90, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalSoC > 100 {
		t.Errorf("overcharged to %v", res.FinalSoC)
	}
	if res.DurationS <= 0 {
		t.Error("no charging happened")
	}
}

func TestDCFastIsFaster(t *testing.T) {
	pack := battery.LeafPack()
	slow, err := Charge(Level2(), pack, 20, 80, 10)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Charge(DCFast(), pack, 20, 80, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fast.DurationS >= slow.DurationS/3 {
		t.Errorf("DC fast (%v s) should be ≫ faster than L2 (%v s)", fast.DurationS, slow.DurationS)
	}
}

func TestSoCTraceMonotone(t *testing.T) {
	pack := battery.LeafPack()
	res, err := Charge(Level2(), pack, 40, 90, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.SoCTrace); i++ {
		if res.SoCTrace[i] < res.SoCTrace[i-1] {
			t.Fatalf("SoC fell during charging at %d", i)
		}
	}
}

func TestFullCycleStats(t *testing.T) {
	// A synthetic drive: 90 → 70 % linear discharge over 1200 s.
	drive := make([]float64, 1201)
	for i := range drive {
		drive[i] = 90 - 20*float64(i)/1200
	}
	dev, avg, err := FullCycleStats(drive, 1, Level2(), battery.LeafPack())
	if err != nil {
		t.Fatal(err)
	}
	// The full cycle spans 70–90 %: average stays inside, deviation is
	// positive and bounded by the half-range.
	if avg < 70 || avg > 90 {
		t.Errorf("cycle average %v outside [70, 90]", avg)
	}
	if dev <= 0 || dev > 10 {
		t.Errorf("cycle deviation %v outside (0, 10]", dev)
	}

	// The fixed-pattern shortcut (drive stats + ChargeDevOffset) should
	// approximate the computed full-cycle deviation within a factor ~2 —
	// this is the test that grounds the paper's constant.
	dDev, _, err := battery.CycleStats(drive)
	if err != nil {
		t.Fatal(err)
	}
	soh := battery.DefaultSoHParams()
	approx := dDev + soh.ChargeDevOffset
	if dev > 2.5*approx || dev < approx/2.5 {
		t.Errorf("fixed-pattern approximation off: full %v vs approx %v", dev, approx)
	}
}

func TestFullCycleStatsNoRecharge(t *testing.T) {
	// Regenerative downhill: SoC ends higher; cycle = drive trace alone.
	drive := []float64{70, 71, 72, 73}
	dev, avg, err := FullCycleStats(drive, 1, Level2(), battery.LeafPack())
	if err != nil {
		t.Fatal(err)
	}
	wantDev, wantAvg, err := battery.CycleStats(drive)
	if err != nil {
		t.Fatal(err)
	}
	if dev != wantDev || avg != wantAvg {
		t.Errorf("no-recharge stats mismatch: %v/%v vs %v/%v", dev, avg, wantDev, wantAvg)
	}
	if _, _, err := FullCycleStats([]float64{1}, 1, Level2(), battery.LeafPack()); err == nil {
		t.Error("short trace accepted")
	}
}
