package charging

import (
	"math"
	"testing"

	"evclimate/internal/battery"
	"evclimate/internal/thermal"
)

func preconditionParams(ambientC float64) PreconditionParams {
	return PreconditionParams{
		Charger:  Level2(),
		Thermal:  thermal.DefaultThermal(),
		AmbientC: ambientC,
	}
}

// TestPreconditionWarmsPack pins the point of depot preconditioning: an
// overnight −20 °C soak plus a Level-2 charge leaves the pack at the
// departure setpoint, with the heater energy drawn from the wall on top
// of the charge energy.
func TestPreconditionWarmsPack(t *testing.T) {
	p := preconditionParams(-20)
	res, err := Precondition(p, battery.LeafPack(), 30, 90)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TargetReached {
		t.Fatalf("pack only reached %.2f °C, target 15 °C", res.FinalPackC)
	}
	if res.FinalPackC < 15 || res.FinalPackC > 25 {
		t.Errorf("final pack %.2f °C implausible for a 15 °C setpoint", res.FinalPackC)
	}
	if res.HeaterEnergyKWh <= 0 {
		t.Error("deep-cold precondition spent no heater energy")
	}
	if res.WallEnergyKWh <= res.Charge.WallEnergyKWh {
		t.Errorf("total wall %v kWh not above charge-only %v kWh",
			res.WallEnergyKWh, res.Charge.WallEnergyKWh)
	}
	if res.DurationS < res.Charge.DurationS {
		t.Errorf("session %v s shorter than its charge %v s", res.DurationS, res.Charge.DurationS)
	}
	// The trace warms while the heater runs; after the setpoint is met
	// the thermostat lets the pack sag only slowly toward ambient (no
	// step may cool faster than the ambient leak allows).
	for i := 1; i < len(res.PackC); i++ {
		if res.PackC[i] < res.PackC[i-1]-0.2 {
			t.Fatalf("pack cooled %.4f → %.4f °C at sample %d", res.PackC[i-1], res.PackC[i], i)
		}
	}
}

// TestPreconditionMildAmbientNoHeat checks the heater stays off when the
// soak already satisfies the setpoint: the session is exactly the charge.
func TestPreconditionMildAmbientNoHeat(t *testing.T) {
	p := preconditionParams(20)
	res, err := Precondition(p, battery.LeafPack(), 30, 90)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeaterEnergyKWh != 0 {
		t.Errorf("mild-ambient precondition spent %v kWh on heating", res.HeaterEnergyKWh)
	}
	if res.DurationS != res.Charge.DurationS {
		t.Errorf("no-heat session %v s != charge %v s", res.DurationS, res.Charge.DurationS)
	}
	if math.Abs(res.WallEnergyKWh-res.Charge.WallEnergyKWh) != 0 {
		t.Errorf("wall energy %v != charge energy %v", res.WallEnergyKWh, res.Charge.WallEnergyKWh)
	}
	// Charging Joule losses may warm the pack slightly above the soak but
	// never cool it.
	if res.FinalPackC < 20-1e-9 {
		t.Errorf("pack cooled below ambient: %v °C", res.FinalPackC)
	}
}

// TestPreconditionHoldBudget bounds the plugged-in hold: a setpoint the
// short top-up charge plus the hold window cannot reach terminates at
// MaxHoldS with TargetReached false.
func TestPreconditionHoldBudget(t *testing.T) {
	p := preconditionParams(-20)
	p.TargetPackC = 80
	p.MaxHoldS = 300
	res, err := Precondition(p, battery.LeafPack(), 88, 90)
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetReached {
		t.Errorf("80 °C setpoint reported reached (final %.1f °C)", res.FinalPackC)
	}
	if got, want := res.DurationS, res.Charge.DurationS+300; math.Abs(got-want) > p.Dt+1e-9 {
		t.Errorf("session %v s, want charge %v s + 300 s hold", got, res.Charge.DurationS)
	}
}

// TestPreconditionValidation rejects broken parameters.
func TestPreconditionValidation(t *testing.T) {
	p := preconditionParams(-20)
	p.TargetPackC = math.NaN()
	if _, err := Precondition(p, battery.LeafPack(), 30, 90); err == nil {
		t.Error("NaN setpoint accepted")
	}
	p = preconditionParams(-20)
	p.MaxHoldS = -1
	if _, err := Precondition(p, battery.LeafPack(), 30, 90); err == nil {
		t.Error("negative hold budget accepted")
	}
	p = preconditionParams(-20)
	p.Charger.Efficiency = 2
	if _, err := Precondition(p, battery.LeafPack(), 30, 90); err == nil {
		t.Error("invalid charger accepted")
	}
}
