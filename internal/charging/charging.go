// Package charging models the charging half of the battery's
// discharging/charging cycle. The paper assumes the charging part has a
// fixed pattern and folds its effect on SoCdev and SoCavg into constants
// (Sec. II-D); this package implements the standard CC-CV (constant
// current, constant voltage) charger so that assumption can be *computed*:
// simulate the recharge, concatenate it with a drive's SoC trace, and
// compare the resulting cycle statistics against the fixed offsets in
// battery.SoHParams.
package charging

import (
	"errors"
	"fmt"
	"math"

	"evclimate/internal/battery"
	"evclimate/internal/units"
)

// Params defines a CC-CV charger.
type Params struct {
	// MaxCurrentA is the constant-current phase current (e.g. 0.5 C).
	MaxCurrentA float64
	// CVThresholdSoC is the SoC (percent) where the charger transitions
	// from constant current to the taper phase.
	CVThresholdSoC float64
	// TaperTimeConstS shapes the exponential current taper in the CV
	// phase.
	TaperTimeConstS float64
	// Efficiency is the wall-to-pack energy efficiency.
	Efficiency float64
	// TerminationC is the current (as a fraction of MaxCurrentA) at
	// which charging stops.
	TerminationFrac float64
}

// Level2 returns a typical 6.6 kW home charger for the Leaf pack
// (≈ 18 A pack-side at 360 V).
func Level2() Params {
	return Params{
		MaxCurrentA:     18,
		CVThresholdSoC:  85,
		TaperTimeConstS: 1800,
		Efficiency:      0.9,
		TerminationFrac: 0.05,
	}
}

// DCFast returns a 45 kW DC fast charger (≈ 125 A pack-side).
func DCFast() Params {
	return Params{
		MaxCurrentA:     125,
		CVThresholdSoC:  80,
		TaperTimeConstS: 900,
		Efficiency:      0.93,
		TerminationFrac: 0.08,
	}
}

// Validate reports invalid parameters.
func (p *Params) Validate() error {
	switch {
	case p.MaxCurrentA <= 0:
		return errors.New("charging: max current must be positive")
	case p.CVThresholdSoC <= 0 || p.CVThresholdSoC > 100:
		return fmt.Errorf("charging: CV threshold %v outside (0, 100]", p.CVThresholdSoC)
	case p.TaperTimeConstS <= 0:
		return errors.New("charging: taper time constant must be positive")
	case p.Efficiency <= 0 || p.Efficiency > 1:
		return errors.New("charging: efficiency must be in (0, 1]")
	case p.TerminationFrac <= 0 || p.TerminationFrac >= 1:
		return errors.New("charging: termination fraction must be in (0, 1)")
	}
	return nil
}

// Result summarizes one charge session.
type Result struct {
	// SoCTrace is the SoC trajectory at the sample period Dt, starting
	// at the initial SoC.
	SoCTrace []float64
	// Dt is the trace sample period in seconds.
	Dt float64
	// DurationS is the total charge time.
	DurationS float64
	// WallEnergyKWh is the energy drawn from the grid.
	WallEnergyKWh float64
	// FinalSoC is the SoC at termination.
	FinalSoC float64
}

// Charge simulates recharging a pack from fromSoC to toSoC (percent) with
// the CC-CV profile, sampling the SoC trace at dt seconds. The session
// ends when toSoC is reached or the taper current drops below the
// termination threshold.
func Charge(p Params, pack battery.Params, fromSoC, toSoC, dt float64) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := pack.Validate(); err != nil {
		return nil, err
	}
	if fromSoC < 0 || toSoC > 100 || fromSoC >= toSoC {
		return nil, fmt.Errorf("charging: SoC window [%v, %v] invalid", fromSoC, toSoC)
	}
	if dt <= 0 {
		return nil, fmt.Errorf("charging: dt %v must be positive", dt)
	}

	soc := fromSoC
	res := &Result{Dt: dt, SoCTrace: []float64{soc}}
	var wallJ float64
	var cvElapsed float64
	// Hard cap on the session length (48 h) to bound pathological
	// parameter combinations.
	maxSteps := int(48 * 3600 / dt)
	for step := 0; step < maxSteps && soc < toSoC; step++ {
		i := p.MaxCurrentA
		if soc >= p.CVThresholdSoC {
			i = p.MaxCurrentA * math.Exp(-cvElapsed/p.TaperTimeConstS)
			cvElapsed += dt
			if i < p.TerminationFrac*p.MaxCurrentA {
				break
			}
		}
		// SoC bookkeeping (charging side of Eq. 13; no rate-capacity
		// effect on charge).
		soc += 100 * i * dt / (units.SecondsPerHour * pack.NominalCapacityAh)
		if soc > toSoC {
			soc = toSoC
		}
		wallJ += i * pack.NominalVoltageV * dt / p.Efficiency
		res.SoCTrace = append(res.SoCTrace, soc)
		res.DurationS += dt
	}
	res.WallEnergyKWh = units.JToKWh(wallJ)
	res.FinalSoC = soc
	return res, nil
}

// FullCycleStats concatenates a drive's SoC trace with the recharge that
// restores its starting SoC, and returns SoCdev and SoCavg over the whole
// discharging/charging cycle (Eqs. 16–17 without the paper's fixed-
// pattern shortcut). driveDt and the charger trace period may differ; the
// charge trace is resampled onto driveDt.
func FullCycleStats(driveTrace []float64, driveDt float64, p Params, pack battery.Params) (dev, avg float64, err error) {
	if len(driveTrace) < 2 {
		return 0, 0, errors.New("charging: drive trace too short")
	}
	if driveDt <= 0 {
		return 0, 0, errors.New("charging: non-positive drive sample period")
	}
	endSoC := driveTrace[len(driveTrace)-1]
	startSoC := driveTrace[0]
	if endSoC >= startSoC {
		// Nothing to recharge (e.g. a downhill run): cycle = drive.
		return battery.CycleStats(driveTrace)
	}
	chg, err := Charge(p, pack, endSoC, startSoC, driveDt)
	if err != nil {
		return 0, 0, err
	}
	full := make([]float64, 0, len(driveTrace)+len(chg.SoCTrace))
	full = append(full, driveTrace...)
	full = append(full, chg.SoCTrace[1:]...) // skip the duplicated seam
	return battery.CycleStats(full)
}
