package control

import (
	"encoding/json"
	"fmt"
)

// This file implements Snapshotter for every controller in the package.
// Each state struct lists exactly the fields the controller's Decide
// mutates; configuration (gains, models, rule bases) is never part of a
// snapshot — a snapshot is restored into an identically configured
// controller.

type onOffState struct {
	On bool `json:"on"`
	// Battery-thermostat latches (cold-climate thermal network).
	BattHeat  bool `json:"batt_heat,omitempty"`
	BattChill bool `json:"batt_chill,omitempty"`
}

// StateSnapshot implements Snapshotter.
func (c *OnOff) StateSnapshot() (json.RawMessage, error) {
	return json.Marshal(onOffState{On: c.on, BattHeat: c.batt.heatOn, BattChill: c.batt.chillOn})
}

// RestoreState implements Snapshotter.
func (c *OnOff) RestoreState(raw json.RawMessage) error {
	var st onOffState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("control: on/off state: %w", err)
	}
	c.on = st.On
	c.batt.heatOn, c.batt.chillOn = st.BattHeat, st.BattChill
	return nil
}

type pidState struct {
	Integral float64 `json:"integral"`
	PrevErr  float64 `json:"prev_err"`
	HasPrev  bool    `json:"has_prev"`
}

// StateSnapshot implements Snapshotter.
func (c *PID) StateSnapshot() (json.RawMessage, error) {
	return json.Marshal(pidState{Integral: c.integral, PrevErr: c.prevErr, HasPrev: c.hasPrev})
}

// RestoreState implements Snapshotter.
func (c *PID) RestoreState(raw json.RawMessage) error {
	var st pidState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("control: pid state: %w", err)
	}
	c.integral, c.prevErr, c.hasPrev = st.Integral, st.PrevErr, st.HasPrev
	return nil
}

type fuzzyState struct {
	PrevErr float64 `json:"prev_err"`
	HasPrev bool    `json:"has_prev"`
	// Battery-thermostat latches (cold-climate thermal network).
	BattHeat  bool `json:"batt_heat,omitempty"`
	BattChill bool `json:"batt_chill,omitempty"`
}

// StateSnapshot implements Snapshotter.
func (c *Fuzzy) StateSnapshot() (json.RawMessage, error) {
	return json.Marshal(fuzzyState{PrevErr: c.prevErr, HasPrev: c.hasPrev, BattHeat: c.batt.heatOn, BattChill: c.batt.chillOn})
}

// RestoreState implements Snapshotter.
func (c *Fuzzy) RestoreState(raw json.RawMessage) error {
	var st fuzzyState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("control: fuzzy state: %w", err)
	}
	c.prevErr, c.hasPrev = st.PrevErr, st.HasPrev
	c.batt.heatOn, c.batt.chillOn = st.BattHeat, st.BattChill
	return nil
}

// StateSnapshot implements Snapshotter: a Constant has no mutable state.
func (c *Constant) StateSnapshot() (json.RawMessage, error) {
	return json.RawMessage(`{}`), nil
}

// RestoreState implements Snapshotter.
func (c *Constant) RestoreState(raw json.RawMessage) error {
	var st struct{}
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("control: constant state: %w", err)
	}
	return nil
}

// supervisorState serializes the ladder position, the hysteresis
// counters, the transition log, the per-stage statistics, the sensor
// sanitizer's hold-last buffer, and every stage controller's own state —
// the complete picture the ISSUE's "ladder rung, hysteresis counters,
// transition log" requirement names.
type supervisorState struct {
	Level       int               `json:"level"`
	SoftStreak  int               `json:"soft_streak"`
	CleanStreak int               `json:"clean_streak"`
	Step        int               `json:"step"`
	Transitions []Transition      `json:"transitions,omitempty"`
	Stats       []StageStats      `json:"stats"`
	LastGood    [3]float64        `json:"last_good"`
	HaveGood    bool              `json:"have_good"`
	Stages      []json.RawMessage `json:"stages"`
}

// StateSnapshot implements Snapshotter. Every stage controller must
// itself implement Snapshotter; a ladder with an opaque stage cannot
// guarantee a bit-for-bit resume.
func (s *Supervisor) StateSnapshot() (json.RawMessage, error) {
	st := supervisorState{
		Level:       s.level,
		SoftStreak:  s.softStreak,
		CleanStreak: s.cleanStreak,
		Step:        s.step,
		Transitions: append([]Transition(nil), s.transitions...),
		Stats:       append([]StageStats(nil), s.stats...),
		LastGood:    s.lastGood,
		HaveGood:    s.haveGood,
		Stages:      make([]json.RawMessage, len(s.stages)),
	}
	for i := range s.stages {
		sn, ok := s.stages[i].Controller.(Snapshotter)
		if !ok {
			return nil, fmt.Errorf("control: supervisor stage %q does not support state snapshots", s.stages[i].Name)
		}
		raw, err := sn.StateSnapshot()
		if err != nil {
			return nil, fmt.Errorf("control: supervisor stage %q: %w", s.stages[i].Name, err)
		}
		st.Stages[i] = raw
	}
	return json.Marshal(st)
}

// RestoreState implements Snapshotter.
func (s *Supervisor) RestoreState(raw json.RawMessage) error {
	var st supervisorState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("control: supervisor state: %w", err)
	}
	if len(st.Stages) != len(s.stages) || len(st.Stats) != len(s.stages) {
		return fmt.Errorf("control: supervisor state has %d stages, ladder has %d", len(st.Stages), len(s.stages))
	}
	if st.Level < 0 || st.Level >= len(s.stages) {
		return fmt.Errorf("control: supervisor state level %d outside ladder", st.Level)
	}
	for i := range s.stages {
		sn, ok := s.stages[i].Controller.(Snapshotter)
		if !ok {
			return fmt.Errorf("control: supervisor stage %q does not support state snapshots", s.stages[i].Name)
		}
		if err := sn.RestoreState(st.Stages[i]); err != nil {
			return fmt.Errorf("control: supervisor stage %q: %w", s.stages[i].Name, err)
		}
	}
	s.level = st.Level
	s.softStreak = st.SoftStreak
	s.cleanStreak = st.CleanStreak
	s.step = st.Step
	s.transitions = st.Transitions
	s.stats = st.Stats
	s.lastGood = st.LastGood
	s.haveGood = st.HaveGood
	// Re-assert the ladder gauge: a restored run whose original demoted
	// before the checkpoint would otherwise report level 0 until the next
	// transition. Instruments are nil-safe when no sink is bound.
	s.telLevel.Set(float64(st.Level))
	return nil
}
