package control

import (
	"errors"
	"fmt"
	"math"

	"evclimate/internal/cabin"
	"evclimate/internal/telemetry"
)

// Supervisor wraps a ladder of controllers with a watchdog: every output
// is validated against the plant's actuator envelope before it is
// applied, internal controller failures (panics, solver breakdowns,
// budget exhaustion) are caught, and persistent trouble walks a
// degradation ladder from the most capable stage down to a safe mode —
// then back up after sustained clean operation. It is the recovery
// structure the one-shot safe-ventilation fallback inside the MPC lacks:
// the MPC's fallback handles one bad solve, the Supervisor handles a bad
// afternoon.
//
// Fault taxonomy:
//
//   - Hard fault: the stage panicked or produced a non-finite or
//     constraint-violating output. The output is never applied; the
//     Supervisor demotes immediately and re-decides with the next stage
//     in the same step, cascading until an output validates (the bottom
//     stage's output is clamped into the envelope as a last resort, so
//     Decide always returns a safe, finite input vector).
//   - Soft fault: the stage's output validated but the stage reported
//     itself unhealthy (HealthReporter), e.g. the MPC's solver ran out
//     of budget. The output is applied, and DemoteAfter consecutive
//     soft faults demote one stage — the hysteresis that keeps a single
//     slow solve from abandoning the MPC.
//
// Re-promotion is staged: after PromoteAfter consecutive clean steps the
// Supervisor moves up one stage, resets it (a cold restart — its warm
// state is stale by now), and requires another full clean streak before
// the next promotion.
type Supervisor struct {
	name   string
	stages []Stage
	model  *cabin.Model
	cfg    SupervisorConfig

	level       int
	softStreak  int
	cleanStreak int
	step        int
	transitions []Transition
	stats       []StageStats
	lastGood    [3]float64 // last finite CabinTempC, OutsideC, SoC
	haveGood    bool

	// Telemetry instruments, resolved once at construction (nil = no-op
	// when no sink is configured).
	telHard, telSoft []*telemetry.Counter // per stage
	telDemote        *telemetry.Counter
	telPromote       *telemetry.Counter
	telLevel         *telemetry.Gauge
}

// Stage is one rung of the degradation ladder, most capable first.
type Stage struct {
	// Name labels the stage in transitions and counters.
	Name string
	// Controller produces the stage's decisions.
	Controller Controller
}

// SupervisorConfig tunes the watchdog.
type SupervisorConfig struct {
	// Cabin is the actuator envelope outputs are validated against. The
	// zero value uses cabin.Default().
	Cabin cabin.Params
	// DemoteAfter is the number of consecutive soft faults that demotes
	// one stage (default 3). Hard faults always demote immediately.
	DemoteAfter int
	// PromoteAfter is the number of consecutive clean steps required
	// before re-promoting one stage (default 45).
	PromoteAfter int
	// ValidationTol is the constraint-check tolerance handed to
	// cabin.Model.CheckInputs (default 1e-6).
	ValidationTol float64
	// ExclusionSlackW is the power slack on the heater/cooler mutual
	// exclusion check, mirroring sim.Tolerances.ActuatorSlack
	// (default 10 W).
	ExclusionSlackW float64
	// Telemetry, when non-nil and active, receives ladder metrics:
	// per-stage hard/soft fault counters, demote/promote transition
	// counters, and the active-level gauge.
	Telemetry telemetry.Sink
}

func (c *SupervisorConfig) fill() {
	if c.Cabin == (cabin.Params{}) {
		c.Cabin = cabin.Default()
	}
	if c.DemoteAfter <= 0 {
		c.DemoteAfter = 3
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 45
	}
	if c.ValidationTol <= 0 {
		c.ValidationTol = 1e-6
	}
	if c.ExclusionSlackW <= 0 {
		c.ExclusionSlackW = 10
	}
}

// HealthState is the Supervisor's coarse health classification.
type HealthState int

const (
	// Healthy means the top stage is active.
	Healthy HealthState = iota
	// Degraded means an intermediate stage is active.
	Degraded
	// SafeMode means the bottom (safest) stage is active.
	SafeMode
)

// String implements fmt.Stringer.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case SafeMode:
		return "safe-mode"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// Transition records one ladder move.
type Transition struct {
	// Step is the control-step index of the move; Time the simulation
	// time handed to Decide.
	Step int
	Time float64
	// From and To are stage indices (To > From is a demotion).
	From, To int
	// Reason describes the triggering fault, or "recovered" for a
	// promotion.
	Reason string
}

// StageStats are per-stage counters since the last Reset.
type StageStats struct {
	// Name is the stage label.
	Name string
	// Steps counts control steps in which this stage produced the
	// applied output.
	Steps int
	// HardFaults counts panics and invalid outputs; SoftFaults counts
	// unhealthy reports with a valid output.
	HardFaults, SoftFaults int
}

// NewSupervisor builds a Supervisor over the given ladder. At least one
// stage is required; stage 0 is the most capable, the last stage the
// safest.
func NewSupervisor(name string, cfg SupervisorConfig, stages ...Stage) (*Supervisor, error) {
	if len(stages) == 0 {
		return nil, errors.New("control: supervisor needs at least one stage")
	}
	cfg.fill()
	m, err := cabin.New(cfg.Cabin)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = "Supervised " + stages[0].Controller.Name()
	}
	s := &Supervisor{name: name, stages: stages, model: m, cfg: cfg}
	s.bindInstruments(cfg.Telemetry)
	s.resetState()
	return s, nil
}

// bindInstruments (re)resolves the ladder's instruments on the given
// sink, detaching them when the sink is nil or inactive.
func (s *Supervisor) bindInstruments(tel telemetry.Sink) {
	s.telHard, s.telSoft = nil, nil
	s.telDemote, s.telPromote, s.telLevel = nil, nil, nil
	if tel == nil || !tel.Active() {
		return
	}
	s.telHard = make([]*telemetry.Counter, len(s.stages))
	s.telSoft = make([]*telemetry.Counter, len(s.stages))
	for i := range s.stages {
		stage := telemetry.L("stage", s.stages[i].Name)
		s.telHard[i] = tel.Counter("supervisor_hard_faults_total", stage)
		s.telSoft[i] = tel.Counter("supervisor_soft_faults_total", stage)
	}
	s.telDemote = tel.Counter("supervisor_transitions_total", telemetry.L("kind", "demote"))
	s.telPromote = tel.Counter("supervisor_transitions_total", telemetry.L("kind", "promote"))
	s.telLevel = tel.Gauge("supervisor_level")
}

// BindTelemetry implements TelemetryBinder: the ladder's metrics move to
// the given sink, and every stage that can itself bind telemetry is
// rebound under its stage label.
func (s *Supervisor) BindTelemetry(tel telemetry.Sink) {
	s.cfg.Telemetry = tel
	s.bindInstruments(tel)
	for i := range s.stages {
		if b, ok := s.stages[i].Controller.(TelemetryBinder); ok {
			b.BindTelemetry(telemetry.WithLabels(tel, telemetry.L("stage", s.stages[i].Name)))
		}
	}
}

// LastSolve implements SolveReporter by delegating to the stage that is
// currently active (the zero value when that stage has no optimizer).
func (s *Supervisor) LastSolve() SolveInfo {
	if sr, ok := s.stages[s.level].Controller.(SolveReporter); ok {
		return sr.LastSolve()
	}
	return SolveInfo{}
}

// Name implements Controller.
func (s *Supervisor) Name() string { return s.name }

// Reset implements Controller: it resets every stage and returns to the
// top of the ladder.
func (s *Supervisor) Reset() {
	for i := range s.stages {
		s.stages[i].Controller.Reset()
	}
	s.resetState()
}

func (s *Supervisor) resetState() {
	s.level = 0
	s.softStreak = 0
	s.cleanStreak = 0
	s.step = 0
	s.transitions = nil
	s.stats = make([]StageStats, len(s.stages))
	for i := range s.stats {
		s.stats[i].Name = s.stages[i].Name
	}
	s.haveGood = false
}

// Health returns the coarse health classification.
func (s *Supervisor) Health() HealthState {
	switch {
	case s.level == 0:
		return Healthy
	case s.level == len(s.stages)-1:
		return SafeMode
	default:
		return Degraded
	}
}

// Level returns the active stage index (0 = most capable).
func (s *Supervisor) Level() int { return s.level }

// ActiveStage returns the active stage's name.
func (s *Supervisor) ActiveStage() string { return s.stages[s.level].Name }

// Transitions returns the ladder moves since the last Reset. The slice
// is the Supervisor's own; treat it as read-only.
func (s *Supervisor) Transitions() []Transition { return s.transitions }

// StageStats returns the per-stage counters since the last Reset.
func (s *Supervisor) StageStats() []StageStats {
	out := make([]StageStats, len(s.stats))
	copy(out, s.stats)
	return out
}

// sanitize replaces non-finite observations with the last finite ones
// (or the target, before any finite reading arrived), so a totally
// broken sensor cannot push NaN through a stage controller's arithmetic.
func (s *Supervisor) sanitize(ctx *StepContext) {
	vals := [3]*float64{&ctx.CabinTempC, &ctx.OutsideC, &ctx.SoC}
	defaults := [3]float64{ctx.TargetC, ctx.TargetC, 50}
	for i, v := range vals {
		if math.IsNaN(*v) || math.IsInf(*v, 0) {
			if s.haveGood {
				*v = s.lastGood[i]
			} else {
				*v = defaults[i]
			}
		}
	}
	for _, f := range [][]float64{ctx.Forecast.MotorPowerW, ctx.Forecast.OutsideC, ctx.Forecast.SolarW} {
		for _, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ctx.Forecast = Forecast{}
				break
			}
		}
	}
	s.lastGood = [3]float64{ctx.CabinTempC, ctx.OutsideC, ctx.SoC}
	s.haveGood = true
}

// validate checks one stage output against the plant envelope: finite
// fields, the C1/C3–C10 constraint set, and heater/cooler mutual
// exclusion (the same rules sim.CheckInvariants applies to the trace).
func (s *Supervisor) validate(in cabin.Inputs, ctx *StepContext) error {
	// Ordered (not a map) so a multi-field failure reports the same
	// first violation every run — transition reasons are replayable.
	fields := [6]struct {
		name string
		v    float64
	}{
		{"supply", in.SupplyTempC}, {"coil", in.CoilTempC},
		{"recirc", in.Recirc}, {"flow", in.AirFlowKgS},
		{"battery-heater", in.BattHeatW}, {"battery-chiller", in.BattChillW},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("control: non-finite %s input: %v", f.name, f.v)
		}
	}
	if in.BattHeatW < 0 || in.BattChillW < 0 {
		return fmt.Errorf("control: negative battery thermal command (heat %.1f W, chill %.1f W)", in.BattHeatW, in.BattChillW)
	}
	mix := s.model.MixTemp(ctx.OutsideC, ctx.CabinTempC, in.Recirc)
	if err := s.model.CheckInputs(in, mix, s.cfg.ValidationTol); err != nil {
		return err
	}
	pw := s.model.PowersFor(in, mix)
	if pw.HeaterW > s.cfg.ExclusionSlackW && pw.CoolerW > s.cfg.ExclusionSlackW {
		return fmt.Errorf("control: heater (%.1f W) and cooler (%.1f W) simultaneously active", pw.HeaterW, pw.CoolerW)
	}
	return nil
}

// try runs one stage's Decide with panic isolation.
func (s *Supervisor) try(level int, ctx StepContext) (in cabin.Inputs, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("control: stage %q panicked: %v", s.stages[level].Name, r)
		}
	}()
	return s.stages[level].Controller.Decide(ctx), nil
}

// move records a ladder transition and activates the target stage.
// Promotions cold-restart the target; demotions keep the target's state
// (it may have been recently active and warm).
func (s *Supervisor) move(to int, ctx *StepContext, reason string) {
	s.transitions = append(s.transitions, Transition{
		Step: s.step, Time: ctx.Time, From: s.level, To: to, Reason: reason,
	})
	if to < s.level {
		s.stages[to].Controller.Reset()
		s.telPromote.Inc()
	} else {
		s.telDemote.Inc()
	}
	s.level = to
	s.telLevel.Set(float64(to))
	s.softStreak = 0
	s.cleanStreak = 0
}

// Decide implements Controller: it consults the active stage, validates
// the output, and walks the ladder on faults. The returned inputs are
// always finite and inside the actuator envelope.
func (s *Supervisor) Decide(ctx StepContext) cabin.Inputs {
	s.sanitize(&ctx)

	// Walk down until a stage produces a valid output.
	var in cabin.Inputs
	valid := false
	for {
		out, err := s.try(s.level, ctx)
		if err == nil {
			err = s.validate(out, &ctx)
		}
		if err == nil {
			in = out
			valid = true
			break
		}
		s.stats[s.level].HardFaults++
		if s.telHard != nil {
			s.telHard[s.level].Inc()
		}
		if s.level == len(s.stages)-1 {
			// Bottom of the ladder: clamp its output into the envelope
			// (or synthesize safe ventilation if it was non-finite).
			in = s.lastResort(out, &ctx)
			break
		}
		s.move(s.level+1, &ctx, fmt.Sprintf("hard fault: %v", err))
	}

	st := &s.stats[s.level]
	st.Steps++

	// Soft-fault watchdog: the output was applied, but the stage reports
	// internal trouble.
	var soft error
	if hr, ok := s.stages[s.level].Controller.(HealthReporter); ok && valid {
		soft = hr.Healthy()
	}
	if soft != nil {
		st.SoftFaults++
		if s.telSoft != nil {
			s.telSoft[s.level].Inc()
		}
		s.softStreak++
		s.cleanStreak = 0
		if s.softStreak >= s.cfg.DemoteAfter && s.level < len(s.stages)-1 {
			s.move(s.level+1, &ctx, fmt.Sprintf("soft faults x%d: %v", s.softStreak, soft))
		}
	} else if valid {
		s.softStreak = 0
		s.cleanStreak++
		if s.cleanStreak >= s.cfg.PromoteAfter && s.level > 0 {
			s.move(s.level-1, &ctx, "recovered")
		}
	}

	s.step++
	return in
}

// lastResort forces any output into a safe, finite input vector: clamp
// into the envelope when finite, otherwise minimum-flow ventilation of
// the current air mix.
func (s *Supervisor) lastResort(in cabin.Inputs, ctx *StepContext) cabin.Inputs {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	if !finite(in.SupplyTempC) || !finite(in.CoilTempC) || !finite(in.Recirc) || !finite(in.AirFlowKgS) {
		dr := s.model.Params().MaxRecirc / 2
		mix := s.model.MixTemp(ctx.OutsideC, ctx.CabinTempC, dr)
		in = cabin.Inputs{SupplyTempC: mix, CoilTempC: mix, Recirc: dr, AirFlowKgS: s.model.Params().MinAirFlowKgS}
	}
	out, _ := s.model.ClampForEnvironment(in, ctx.OutsideC, ctx.CabinTempC)
	return out
}
