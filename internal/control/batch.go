package control

import (
	"encoding/json"
	"fmt"

	"evclimate/internal/cabin"
)

// This file is the controller side of the batched many-vehicle
// simulation core: N controller lanes stepped in lockstep behind one
// API. The cheap baselines (on/off, fuzzy) get structure-of-arrays fast
// paths whose per-lane arithmetic is the scalar Decide kernel verbatim,
// so batch and scalar runs are bit-identical; every other controller
// (the MPC family, supervisors) is grouped behind the same API by
// ScalarBatch, which steps each lane's scalar Decide in turn.

// BatchController steps N controller lanes in lockstep. Lane i's
// decision for ctxs[i] must be bit-identical to what a scalar controller
// configured like lane i would decide given the same context history.
type BatchController interface {
	// Lanes returns the lane count.
	Lanes() int
	// Lane returns lane i's scalar controller (for Name, telemetry
	// interfaces, and post-run diagnostics). Batch implementations with
	// SoA state must SyncLanes before the returned controller's own
	// state is read.
	Lane(i int) Controller
	// Reset resets every lane to its initial state.
	Reset()
	// DecideAll writes lane i's decision for ctxs[i] into out[i]; both
	// slices have Lanes() elements.
	DecideAll(ctxs []StepContext, out []cabin.Inputs)
}

// BatchSnapshotter is implemented by batch controllers whose lanes can
// checkpoint. Lane blobs are byte-compatible with the scalar
// controllers' Snapshotter formats, so a batch checkpoint resumes a
// scalar run and vice versa.
type BatchSnapshotter interface {
	// LaneSnapshot serializes lane i's mutable state.
	LaneSnapshot(i int) (json.RawMessage, error)
	// RestoreLane loads lane i's state from a snapshot blob.
	RestoreLane(i int, raw json.RawMessage) error
}

// LaneSyncer is implemented by batch controllers that keep lane state in
// SoA arrays: SyncLanes writes it back into the scalar lane controllers,
// so Lane(i) reflects the run afterwards.
type LaneSyncer interface {
	SyncLanes()
}

// Batchable reports whether Batch has an SoA fast path for the
// controller's concrete type — the sweep engine's grouping predicate
// (batching MPC lanes behind ScalarBatch would serialize work that
// parallelizes better across jobs).
func Batchable(c Controller) bool {
	switch c.(type) {
	case *OnOff, *Fuzzy:
		return true
	}
	return false
}

// Batch groups scalar controllers behind the batch API, selecting the
// SoA fast path when every lane is the same batchable type and falling
// back to per-lane scalar stepping otherwise.
func Batch(ctrls []Controller) BatchController {
	if len(ctrls) > 0 {
		allOnOff, allFuzzy := true, true
		for _, c := range ctrls {
			if _, ok := c.(*OnOff); !ok {
				allOnOff = false
			}
			if _, ok := c.(*Fuzzy); !ok {
				allFuzzy = false
			}
		}
		if allOnOff {
			lanes := make([]*OnOff, len(ctrls))
			for i, c := range ctrls {
				lanes[i] = c.(*OnOff)
			}
			return NewBatchOnOff(lanes)
		}
		if allFuzzy {
			lanes := make([]*Fuzzy, len(ctrls))
			for i, c := range ctrls {
				lanes[i] = c.(*Fuzzy)
			}
			return NewBatchFuzzy(lanes)
		}
	}
	return NewScalarBatch(ctrls)
}

// BatchOnOff is the SoA batch form of the on/off thermostat: the
// hysteresis and battery-thermostat latches live in per-lane arrays and
// each lane's decision runs the scalar kernel against them.
type BatchOnOff struct {
	lanes []*OnOff
	on    []bool
	batt  []batteryThermostat
}

// NewBatchOnOff wraps the given lane controllers (which hold per-lane
// configuration) into a batch, adopting their current latch state.
func NewBatchOnOff(lanes []*OnOff) *BatchOnOff {
	b := &BatchOnOff{lanes: lanes, on: make([]bool, len(lanes)), batt: make([]batteryThermostat, len(lanes))}
	for i, c := range lanes {
		b.on[i] = c.on
		b.batt[i] = c.batt
	}
	return b
}

// Lanes implements BatchController.
func (b *BatchOnOff) Lanes() int { return len(b.lanes) }

// Lane implements BatchController.
func (b *BatchOnOff) Lane(i int) Controller { return b.lanes[i] }

// Reset implements BatchController.
func (b *BatchOnOff) Reset() {
	for i := range b.lanes {
		b.lanes[i].Reset()
		b.on[i] = false
		b.batt[i] = batteryThermostat{}
	}
}

// DecideAll implements BatchController.
func (b *BatchOnOff) DecideAll(ctxs []StepContext, out []cabin.Inputs) {
	for i, c := range b.lanes {
		out[i] = c.decideLane(&ctxs[i], &b.on[i], &b.batt[i])
	}
}

// SyncLanes implements LaneSyncer.
func (b *BatchOnOff) SyncLanes() {
	for i, c := range b.lanes {
		c.on = b.on[i]
		c.batt = b.batt[i]
	}
}

// LaneSnapshot implements BatchSnapshotter, emitting the scalar
// controller's onOffState JSON.
func (b *BatchOnOff) LaneSnapshot(i int) (json.RawMessage, error) {
	return json.Marshal(onOffState{On: b.on[i], BattHeat: b.batt[i].heatOn, BattChill: b.batt[i].chillOn})
}

// RestoreLane implements BatchSnapshotter.
func (b *BatchOnOff) RestoreLane(i int, raw json.RawMessage) error {
	var st onOffState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("control: on/off lane %d state: %w", i, err)
	}
	b.on[i] = st.On
	b.batt[i] = batteryThermostat{heatOn: st.BattHeat, chillOn: st.BattChill}
	return nil
}

// BatchFuzzy is the SoA batch form of the fuzzy baseline: derivative
// memory and battery latches in per-lane arrays, decisions through each
// lane's compiled rule base.
type BatchFuzzy struct {
	lanes   []*Fuzzy
	prevErr []float64
	hasPrev []bool
	batt    []batteryThermostat
}

// NewBatchFuzzy wraps the given lane controllers into a batch, adopting
// their current state.
func NewBatchFuzzy(lanes []*Fuzzy) *BatchFuzzy {
	b := &BatchFuzzy{
		lanes:   lanes,
		prevErr: make([]float64, len(lanes)),
		hasPrev: make([]bool, len(lanes)),
		batt:    make([]batteryThermostat, len(lanes)),
	}
	for i, c := range lanes {
		b.prevErr[i] = c.prevErr
		b.hasPrev[i] = c.hasPrev
		b.batt[i] = c.batt
	}
	return b
}

// Lanes implements BatchController.
func (b *BatchFuzzy) Lanes() int { return len(b.lanes) }

// Lane implements BatchController.
func (b *BatchFuzzy) Lane(i int) Controller { return b.lanes[i] }

// Reset implements BatchController.
func (b *BatchFuzzy) Reset() {
	for i := range b.lanes {
		b.lanes[i].Reset()
		b.prevErr[i] = 0
		b.hasPrev[i] = false
		b.batt[i] = batteryThermostat{}
	}
}

// DecideAll implements BatchController.
func (b *BatchFuzzy) DecideAll(ctxs []StepContext, out []cabin.Inputs) {
	for i, c := range b.lanes {
		out[i] = c.decideLane(&ctxs[i], &b.prevErr[i], &b.hasPrev[i], &b.batt[i])
	}
}

// SyncLanes implements LaneSyncer.
func (b *BatchFuzzy) SyncLanes() {
	for i, c := range b.lanes {
		c.prevErr = b.prevErr[i]
		c.hasPrev = b.hasPrev[i]
		c.batt = b.batt[i]
	}
}

// LaneSnapshot implements BatchSnapshotter, emitting the scalar
// controller's fuzzyState JSON.
func (b *BatchFuzzy) LaneSnapshot(i int) (json.RawMessage, error) {
	return json.Marshal(fuzzyState{PrevErr: b.prevErr[i], HasPrev: b.hasPrev[i], BattHeat: b.batt[i].heatOn, BattChill: b.batt[i].chillOn})
}

// RestoreLane implements BatchSnapshotter.
func (b *BatchFuzzy) RestoreLane(i int, raw json.RawMessage) error {
	var st fuzzyState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("control: fuzzy lane %d state: %w", i, err)
	}
	b.prevErr[i] = st.PrevErr
	b.hasPrev[i] = st.HasPrev
	b.batt[i] = batteryThermostat{heatOn: st.BattHeat, chillOn: st.BattChill}
	return nil
}

// ScalarBatch adapts arbitrary scalar controllers to the batch API by
// stepping each lane's Decide in turn — the MPC path until QP-level
// batching lands. Decisions are trivially bit-identical to scalar runs;
// there is no SoA speedup.
type ScalarBatch struct {
	lanes []Controller
}

// NewScalarBatch wraps scalar controllers one-to-one into batch lanes.
func NewScalarBatch(ctrls []Controller) *ScalarBatch {
	return &ScalarBatch{lanes: ctrls}
}

// Lanes implements BatchController.
func (b *ScalarBatch) Lanes() int { return len(b.lanes) }

// Lane implements BatchController.
func (b *ScalarBatch) Lane(i int) Controller { return b.lanes[i] }

// Reset implements BatchController.
func (b *ScalarBatch) Reset() {
	for _, c := range b.lanes {
		c.Reset()
	}
}

// DecideAll implements BatchController.
func (b *ScalarBatch) DecideAll(ctxs []StepContext, out []cabin.Inputs) {
	for i, c := range b.lanes {
		out[i] = c.Decide(ctxs[i])
	}
}

// LaneSnapshot implements BatchSnapshotter when the lane controller is a
// Snapshotter.
func (b *ScalarBatch) LaneSnapshot(i int) (json.RawMessage, error) {
	s, ok := b.lanes[i].(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("control: lane %d controller %q does not support state snapshots", i, b.lanes[i].Name())
	}
	return s.StateSnapshot()
}

// RestoreLane implements BatchSnapshotter when the lane controller is a
// Snapshotter.
func (b *ScalarBatch) RestoreLane(i int, raw json.RawMessage) error {
	s, ok := b.lanes[i].(Snapshotter)
	if !ok {
		return fmt.Errorf("control: lane %d controller %q does not support state snapshots", i, b.lanes[i].Name())
	}
	return s.RestoreState(raw)
}
