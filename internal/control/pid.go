package control

import (
	"evclimate/internal/cabin"
	"evclimate/internal/units"
)

// PID is a plain proportional–integral–derivative climate controller, the
// implementation substrate the paper notes conventional automotive climate
// control runs on [8][9][10]. It maps the PID actuation u ∈ [−1, 1]
// (negative = heating) onto supply temperature and air flow the same way
// the fuzzy baseline does, providing an ablation point between On/Off and
// fuzzy control.
type PID struct {
	// Model supplies actuator limits.
	Model *cabin.Model
	// Kp, Ki, Kd are the gains on the temperature error in °C.
	Kp, Ki, Kd float64
	// Recirc is the fixed damper setting.
	Recirc float64
	// MaxCoolSupplyDropC / MaxHeatSupplyRiseC map |u| = 1 to supply
	// temperatures, as in the fuzzy baseline.
	MaxCoolSupplyDropC, MaxHeatSupplyRiseC float64

	integral float64
	prevErr  float64
	hasPrev  bool
}

// NewPID returns a conservatively tuned PID baseline.
func NewPID(m *cabin.Model) *PID {
	return &PID{
		Model:              m,
		Kp:                 0.5,
		Ki:                 0.002,
		Kd:                 2.0,
		Recirc:             0.5,
		MaxCoolSupplyDropC: 16,
		MaxHeatSupplyRiseC: 28,
	}
}

// Name implements Controller.
func (c *PID) Name() string { return "PID" }

// Reset implements Controller.
func (c *PID) Reset() {
	c.integral = 0
	c.prevErr = 0
	c.hasPrev = false
}

// Decide implements Controller.
func (c *PID) Decide(ctx StepContext) cabin.Inputs {
	e := ctx.CabinTempC - ctx.TargetC // positive = too hot = cool
	var de float64
	if c.hasPrev && ctx.Dt > 0 {
		de = (e - c.prevErr) / ctx.Dt
	}
	c.prevErr = e
	c.hasPrev = true
	c.integral += e * ctx.Dt
	// Anti-windup: bound the integral contribution to ±0.5.
	if c.Ki > 0 {
		c.integral = units.Clamp(c.integral, -0.5/c.Ki, 0.5/c.Ki)
	}
	u := units.Clamp(c.Kp*e+c.Ki*c.integral+c.Kd*de, -1, 1)

	p := c.Model.Params()
	mix := c.Model.MixTemp(ctx.OutsideC, ctx.CabinTempC, c.Recirc)
	mag := u
	if mag < 0 {
		mag = -mag
	}
	mz := p.MinAirFlowKgS + mag*(p.MaxAirFlowKgS-p.MinAirFlowKgS)*0.85
	var in cabin.Inputs
	switch {
	case u > 0.02:
		ts := ctx.TargetC - u*c.MaxCoolSupplyDropC
		in = cabin.Inputs{SupplyTempC: ts, CoilTempC: ts, Recirc: c.Recirc, AirFlowKgS: mz}
	case u < -0.02:
		ts := ctx.TargetC - u*c.MaxHeatSupplyRiseC
		in = cabin.Inputs{SupplyTempC: ts, CoilTempC: mix, Recirc: c.Recirc, AirFlowKgS: mz}
	default:
		in = cabin.Inputs{SupplyTempC: mix, CoilTempC: mix, Recirc: c.Recirc, AirFlowKgS: p.MinAirFlowKgS}
	}
	return c.Model.ClampInputs(in, mix)
}

// Constant applies fixed HVAC inputs every step — useful for plant tests
// and for modeling the "HVAC as constant load" assumption the paper
// criticizes in prior work.
type Constant struct {
	// Model supplies actuator limits.
	Model *cabin.Model
	// Inputs are applied (clamped) every step.
	Inputs cabin.Inputs
}

// Name implements Controller.
func (c *Constant) Name() string { return "Constant" }

// Reset implements Controller.
func (c *Constant) Reset() {}

// Decide implements Controller.
func (c *Constant) Decide(ctx StepContext) cabin.Inputs {
	in, _ := c.Model.ClampForEnvironment(c.Inputs, ctx.OutsideC, ctx.CabinTempC)
	return in
}
