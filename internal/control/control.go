// Package control defines the climate-controller interface shared by the
// baselines and the MPC, plus the two state-of-the-art baselines the paper
// compares against (Sec. IV-B): the switching On/Off thermostat [8][9] and
// the fuzzy-based controller [10]. A plain PID controller is included as
// an additional reference point.
package control

import (
	"encoding/json"

	"evclimate/internal/cabin"
	"evclimate/internal/telemetry"
)

// Forecast carries the preview information a predictive controller gets
// from the drive profile (paper Sec. II-A: route, traffic, and climate
// data known before driving). Slices share one sample period Dt and are
// equal length; a zero-length forecast means no preview is available.
type Forecast struct {
	// Dt is the forecast sample period in seconds.
	Dt float64
	// MotorPowerW is the predicted electrical motor power over the
	// horizon (Algorithm 1 line 14).
	MotorPowerW []float64
	// OutsideC is the predicted ambient temperature (line 15).
	OutsideC []float64
	// SolarW is the predicted solar thermal load.
	SolarW []float64
}

// Len returns the number of forecast steps.
func (f Forecast) Len() int { return len(f.MotorPowerW) }

// StepContext is everything a controller may observe at one control step.
type StepContext struct {
	// Time is the simulation time in seconds.
	Time float64
	// Dt is the control period in seconds.
	Dt float64
	// CabinTempC is the measured cabin temperature T_z.
	CabinTempC float64
	// OutsideC is the current ambient temperature T_o.
	OutsideC float64
	// SolarW is the current solar thermal load.
	SolarW float64
	// MotorPowerW is the current electrical motor power P_e.
	MotorPowerW float64
	// SoC is the battery state of charge in percent.
	SoC float64
	// TargetC is the desired cabin temperature.
	TargetC float64
	// ComfortLowC and ComfortHighC bound the comfort zone (constraint
	// C2).
	ComfortLowC, ComfortHighC float64
	// Forecast is the preview over the control window (may be empty).
	Forecast Forecast
	// SolverIterBudget, when positive, caps the iterations an optimizing
	// controller may spend on this step (an overloaded ECU or an injected
	// solver-budget fault). Non-optimizing controllers ignore it.
	SolverIterBudget int
	// PackTempC is the measured battery-pack temperature and PackThermal
	// reports whether the simulation runs the cold-climate thermal
	// network (internal/thermal). When PackThermal is false PackTempC is
	// meaningless and controllers must not emit battery heater/chiller
	// commands.
	PackTempC   float64
	PackThermal bool
}

// Controller decides the HVAC inputs for the next control period.
type Controller interface {
	// Name identifies the controller in experiment reports.
	Name() string
	// Decide returns the HVAC inputs to apply over [Time, Time+Dt).
	Decide(ctx StepContext) cabin.Inputs
	// Reset clears internal state (integrators, hysteresis latches)
	// before a new run.
	Reset()
}

// SolveInfo is one Decide call's optimizer diagnostics, for telemetry
// step spans and solver-iteration histograms.
type SolveInfo struct {
	// Iterations is the SQP major-iteration count of the solve.
	Iterations int
	// QPIterations is the accumulated interior-point iteration count of
	// the solve's QP subproblems.
	QPIterations int
	// Status is the solver termination status ("converged", "stalled",
	// ...); empty for controllers without an optimizer.
	Status string
}

// SolveReporter is implemented by optimizing controllers that can
// report the most recent Decide's solver work. The sim engine uses it
// to fill step spans and iteration histograms without knowing the
// controller's concrete type; wrappers (the Supervisor) delegate to the
// stage that produced the applied output.
type SolveReporter interface {
	// LastSolve returns the diagnostics of the last Decide call (the
	// zero value before the first call, or when the active stage has no
	// optimizer).
	LastSolve() SolveInfo
}

// LadderReporter is implemented by supervisory controllers that expose
// which rung of a degradation ladder produced the applied output.
type LadderReporter interface {
	// Level is the active stage index (0 = most capable).
	Level() int
	// ActiveStage is the active stage's name.
	ActiveStage() string
}

// TelemetryBinder is implemented by controllers that can late-bind a
// telemetry sink after construction. The sweep engine builds controllers
// through zero-argument constructors, so it cannot pass each job's
// labeled sink at construction time; the sim engine injects it through
// this interface before the run starts. Binding nil or an inactive sink
// detaches the controller's instruments.
type TelemetryBinder interface {
	BindTelemetry(tel telemetry.Sink)
}

// Snapshotter is implemented by controllers whose mutable state can be
// captured and restored for mid-run checkpointing. StateSnapshot returns
// a self-contained JSON blob of everything Decide mutates — integrators,
// hysteresis latches, warm starts, diagnostics counters — and
// RestoreState replaces that state with a blob taken from an identically
// configured controller, so a restored run continues bit-for-bit from
// where the snapshot was taken. encoding/json round-trips finite
// float64 values exactly, so a blob that passed through a journal on
// disk restores the same bits.
type Snapshotter interface {
	// StateSnapshot serializes the controller's mutable state.
	StateSnapshot() (json.RawMessage, error)
	// RestoreState replaces the controller's mutable state with a blob
	// produced by StateSnapshot. The controller's configuration
	// (gains, models, ladder shape) must match the snapshotting
	// controller's; RestoreState validates only what it can see.
	RestoreState(json.RawMessage) error
}

// HealthReporter is implemented by controllers that can report whether
// their last Decide was internally healthy — e.g. the MPC reports a
// solver that fell back to safe ventilation or ran out of budget. The
// Supervisor treats a non-nil report as a soft fault: the output is
// still used (it passed validation), but repeated reports walk the
// degradation ladder.
type HealthReporter interface {
	// Healthy returns nil when the last Decide was internally sound, or
	// an error describing the internal failure.
	Healthy() error
}

// coolingNeeded reports whether the environment pushes the cabin above
// the target (so the HVAC must cool), based on ambient and solar load.
func coolingNeeded(ctx *StepContext) bool {
	// Solar gain makes mild ambients net-heating; 50 W/K shell
	// conductance is the Default() cabin value and only the sign matters
	// for mode selection here.
	return ctx.OutsideC+ctx.SolarW/50 > ctx.TargetC
}
