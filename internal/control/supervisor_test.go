package control

import (
	"errors"
	"math"
	"testing"

	"evclimate/internal/cabin"
)

// fakeCtl is a scriptable stage controller: it emits safe ventilation
// except where its fault hooks say otherwise.
type fakeCtl struct {
	name   string
	model  *cabin.Model
	bad    func(step int) bool // emit NaN inputs
	panics func(step int) bool
	sick   func(step int) bool // report unhealthy
	step   int
	resets int
}

func (f *fakeCtl) Name() string { return f.name }
func (f *fakeCtl) Reset()       { f.resets++ }

func (f *fakeCtl) Decide(ctx StepContext) cabin.Inputs {
	step := f.step
	f.step++
	if f.panics != nil && f.panics(step) {
		panic("scripted panic")
	}
	if f.bad != nil && f.bad(step) {
		return cabin.Inputs{SupplyTempC: math.NaN(), CoilTempC: math.Inf(1), Recirc: 0.5, AirFlowKgS: 0.1}
	}
	mix := f.model.MixTemp(ctx.OutsideC, ctx.CabinTempC, 0.5)
	return cabin.Inputs{SupplyTempC: mix, CoilTempC: mix, Recirc: 0.5, AirFlowKgS: f.model.Params().MinAirFlowKgS}
}

func (f *fakeCtl) Healthy() error {
	if f.sick != nil && f.sick(f.step-1) {
		return errors.New("scripted sickness")
	}
	return nil
}

func testModel(t *testing.T) *cabin.Model {
	t.Helper()
	m, err := cabin.New(cabin.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func ctxAt(step int) StepContext {
	return StepContext{
		Time: float64(step), Dt: 1,
		CabinTempC: 25, OutsideC: 35, SoC: 80,
		TargetC: 24, ComfortLowC: 21, ComfortHighC: 27,
	}
}

func newTestSupervisor(t *testing.T, cfg SupervisorConfig, stages ...Stage) *Supervisor {
	t.Helper()
	s, err := NewSupervisor("test", cfg, stages...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSupervisorHardFaultCascades(t *testing.T) {
	m := testModel(t)
	top := &fakeCtl{name: "top", model: m, bad: func(int) bool { return true }}
	mid := &fakeCtl{name: "mid", model: m, panics: func(int) bool { return true }}
	bot := &fakeCtl{name: "bot", model: m}
	s := newTestSupervisor(t, SupervisorConfig{},
		Stage{Name: "top", Controller: top},
		Stage{Name: "mid", Controller: mid},
		Stage{Name: "bot", Controller: bot},
	)

	in := s.Decide(ctxAt(0))
	if s.Level() != 2 {
		t.Fatalf("level = %d, want 2 (cascaded to bottom)", s.Level())
	}
	if s.Health() != SafeMode {
		t.Fatalf("health = %v, want safe-mode", s.Health())
	}
	if math.IsNaN(in.SupplyTempC) || in.AirFlowKgS <= 0 {
		t.Fatalf("invalid output emitted: %+v", in)
	}
	tr := s.Transitions()
	if len(tr) != 2 || tr[0].From != 0 || tr[0].To != 1 || tr[1].From != 1 || tr[1].To != 2 {
		t.Fatalf("transitions = %+v", tr)
	}
	st := s.StageStats()
	if st[0].HardFaults != 1 || st[1].HardFaults != 1 || st[2].Steps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSupervisorBottomStageLastResort(t *testing.T) {
	m := testModel(t)
	bad := &fakeCtl{name: "only", model: m, bad: func(int) bool { return true }}
	s := newTestSupervisor(t, SupervisorConfig{}, Stage{Name: "only", Controller: bad})

	in := s.Decide(ctxAt(0))
	p := m.Params()
	if math.IsNaN(in.SupplyTempC) || math.IsNaN(in.CoilTempC) {
		t.Fatalf("last resort emitted non-finite inputs: %+v", in)
	}
	if in.AirFlowKgS < p.MinAirFlowKgS || in.AirFlowKgS > p.MaxAirFlowKgS {
		t.Fatalf("last resort flow %v outside range", in.AirFlowKgS)
	}
}

func TestSupervisorSoftFaultHysteresisAndPromotion(t *testing.T) {
	m := testModel(t)
	// Top stage reports sick on steps 0..4 then recovers.
	top := &fakeCtl{name: "top", model: m, sick: func(step int) bool { return step < 5 }}
	bot := &fakeCtl{name: "bot", model: m}
	s := newTestSupervisor(t, SupervisorConfig{DemoteAfter: 3, PromoteAfter: 4},
		Stage{Name: "top", Controller: top},
		Stage{Name: "bot", Controller: bot},
	)

	// Two sick steps: hysteresis holds the top stage.
	s.Decide(ctxAt(0))
	s.Decide(ctxAt(1))
	if s.Level() != 0 {
		t.Fatalf("demoted after %d soft faults, want hold until 3", 2)
	}
	// Third sick step: demote.
	s.Decide(ctxAt(2))
	if s.Level() != 1 {
		t.Fatalf("level = %d after 3 soft faults, want 1", s.Level())
	}
	resetsAtDemote := top.resets

	// Four clean steps at the bottom: promote back, cold-restarting top.
	for k := 3; k < 7; k++ {
		s.Decide(ctxAt(k))
	}
	if s.Level() != 0 {
		t.Fatalf("level = %d after clean streak, want 0", s.Level())
	}
	if top.resets != resetsAtDemote+1 {
		t.Fatalf("promotion did not cold-restart the stage (resets %d → %d)", resetsAtDemote, top.resets)
	}
	tr := s.Transitions()
	if len(tr) != 2 || tr[1].Reason != "recovered" {
		t.Fatalf("transitions = %+v", tr)
	}

	// The promotion must require a fresh clean streak, not inherit the
	// old one.
	if s.cleanStreak != 0 {
		t.Fatalf("clean streak carried over promotion: %d", s.cleanStreak)
	}
}

func TestSupervisorSanitizesNonFiniteObservations(t *testing.T) {
	m := testModel(t)
	var seen []StepContext
	spy := &fakeCtl{name: "spy", model: m}
	s := newTestSupervisor(t, SupervisorConfig{}, Stage{Name: "spy", Controller: spyWrap{spy, &seen}})

	good := ctxAt(0)
	s.Decide(good)

	broken := ctxAt(1)
	broken.CabinTempC = math.NaN()
	broken.OutsideC = math.Inf(1)
	broken.Forecast = Forecast{Dt: 1, MotorPowerW: []float64{math.NaN()}, OutsideC: []float64{35}, SolarW: []float64{0}}
	s.Decide(broken)

	got := seen[1]
	if got.CabinTempC != good.CabinTempC || got.OutsideC != good.OutsideC {
		t.Fatalf("non-finite observations not replaced with last good: %+v", got)
	}
	if got.Forecast.Len() != 0 {
		t.Fatal("non-finite forecast not dropped")
	}
}

// spyWrap records every context handed to the inner controller.
type spyWrap struct {
	inner Controller
	seen  *[]StepContext
}

func (w spyWrap) Name() string { return w.inner.Name() }
func (w spyWrap) Reset()       { w.inner.Reset() }
func (w spyWrap) Decide(ctx StepContext) cabin.Inputs {
	*w.seen = append(*w.seen, ctx)
	return w.inner.Decide(ctx)
}

func TestSupervisorResetReturnsToTop(t *testing.T) {
	m := testModel(t)
	top := &fakeCtl{name: "top", model: m, bad: func(int) bool { return true }}
	bot := &fakeCtl{name: "bot", model: m}
	s := newTestSupervisor(t, SupervisorConfig{},
		Stage{Name: "top", Controller: top},
		Stage{Name: "bot", Controller: bot},
	)
	s.Decide(ctxAt(0))
	if s.Level() != 1 {
		t.Fatalf("level = %d, want 1", s.Level())
	}
	s.Reset()
	if s.Level() != 0 || len(s.Transitions()) != 0 || s.StageStats()[1].Steps != 0 {
		t.Fatal("Reset did not clear supervisor state")
	}
}
