package control

import "evclimate/internal/cabin"

// Battery thermostatic rule constants shared by the ladder baselines
// (on/off and fuzzy). The MPC co-schedules the battery branch
// optimally; the baselines use this simple latch so the supervisor
// ladder stays total under thermal-network simulations — every rung can
// keep the pack out of the damaging cold/hot extremes, just not
// efficiently.
const (
	// BattHeatOnC / BattHeatOffC latch the pack heater on below 5 °C
	// (lithium-plating territory under charge/regen) and off above 12 °C.
	BattHeatOnC  = 5.0
	BattHeatOffC = 12.0
	// BattChillOnC / BattChillOffC latch the chiller on above 35 °C and
	// off below 30 °C.
	BattChillOnC  = 35.0
	BattChillOffC = 30.0
	// BattHeatCmdW and BattChillCmdW are the fixed branch commands while
	// latched (the thermal network clamps to its own limits).
	BattHeatCmdW  = 3000.0
	BattChillCmdW = 1500.0
)

// batteryThermostat is the latch state of the baseline battery-thermal
// rule. Zero value = both branches off.
type batteryThermostat struct {
	heatOn, chillOn bool
}

// reset clears both latches.
func (b *batteryThermostat) reset() { b.heatOn, b.chillOn = false, false }

// apply updates the latches from the measured pack temperature and
// writes the branch commands into the decided inputs. Without a thermal
// network (ctx.PackThermal false) it clears the latches and leaves the
// inputs untouched, so non-thermal behaviour is bit-identical.
func (b *batteryThermostat) apply(ctx *StepContext, in *cabin.Inputs) {
	if !ctx.PackThermal {
		b.reset()
		return
	}
	if ctx.PackTempC < BattHeatOnC {
		b.heatOn = true
	} else if ctx.PackTempC > BattHeatOffC {
		b.heatOn = false
	}
	if ctx.PackTempC > BattChillOnC {
		b.chillOn = true
	} else if ctx.PackTempC < BattChillOffC {
		b.chillOn = false
	}
	if b.heatOn {
		in.BattHeatW = BattHeatCmdW
	}
	if b.chillOn {
		in.BattChillW = BattChillCmdW
	}
}
