package control

import "evclimate/internal/cabin"

// OnOff is the switching On/Off climate-control baseline ([8][9]): a
// hysteresis thermostat that drives the HVAC at a fixed operating point
// whenever the cabin temperature leaves the comfort band and idles it
// (ventilation only) inside the band. This is the reference methodology
// the paper normalizes Figs. 7–8 against.
type OnOff struct {
	// Model supplies actuator limits for clamping.
	Model *cabin.Model
	// CoolSupplyC is the supply temperature commanded when cooling
	// (default 8 °C).
	CoolSupplyC float64
	// HeatSupplyC is the supply temperature commanded when heating
	// (default 52 °C; the heater power cap reduces it at full fan).
	HeatSupplyC float64
	// OnAirFlowKgS is the fixed fan setting while active (default
	// 0.22 kg/s).
	OnAirFlowKgS float64
	// Recirc is the damper setting in cooling mode (default 0: fresh
	// air, the simple units' AC default).
	Recirc float64
	// HeatRecirc is the damper setting in heating mode (default 0.5:
	// partial recirculation, without which the heater's power limit
	// cannot hold comfort against a cold ambient).
	HeatRecirc float64
	// HysteresisC overrides the switching band half-width; when zero the
	// comfort-zone half-width is used.
	HysteresisC float64

	on   bool
	batt batteryThermostat
}

// NewOnOff returns the baseline with its default operating point: a
// fixed compressor/heater setting at high fan speed, cycling across the
// comfort band — the simple thermostat behaviour of the original units
// [8][9].
func NewOnOff(m *cabin.Model) *OnOff {
	return &OnOff{
		Model:        m,
		CoolSupplyC:  8,
		HeatSupplyC:  52,
		OnAirFlowKgS: 0.22,
		Recirc:       0.0,
		HeatRecirc:   0.5,
	}
}

// Name implements Controller.
func (c *OnOff) Name() string { return "On/Off" }

// Reset implements Controller.
func (c *OnOff) Reset() { c.on = false; c.batt.reset() }

// Decide implements Controller.
func (c *OnOff) Decide(ctx StepContext) cabin.Inputs {
	return c.decideLane(&ctx, &c.on, &c.batt)
}

// decideLane is the decision kernel shared by the scalar controller and
// BatchOnOff lanes: the arithmetic of Decide with the latch state
// supplied by the caller, so the batch path's SoA state arrays produce
// the same bits the scalar fields would.
func (c *OnOff) decideLane(ctx *StepContext, on *bool, batt *batteryThermostat) cabin.Inputs {
	band := c.HysteresisC
	if band <= 0 {
		band = (ctx.ComfortHighC - ctx.ComfortLowC) / 2
		if band <= 0 {
			band = 1.5
		}
	}
	cooling := coolingNeeded(ctx)
	// Hysteresis latch swinging across most of the comfort band, with
	// overshoot past the target before the compressor/heater drops out —
	// the characteristic deep temperature ripple of Fig. 5's On/Off
	// trace.
	if cooling {
		if ctx.CabinTempC >= ctx.TargetC+band {
			*on = true
		} else if ctx.CabinTempC <= ctx.TargetC-band*2/3 {
			*on = false
		}
	} else {
		if ctx.CabinTempC <= ctx.TargetC-band {
			*on = true
		} else if ctx.CabinTempC >= ctx.TargetC+band*2/3 {
			*on = false
		}
	}

	dr := c.Recirc
	if !cooling {
		dr = c.HeatRecirc
	}
	mix := c.Model.MixTemp(ctx.OutsideC, ctx.CabinTempC, dr)
	var in cabin.Inputs
	if !*on {
		// Ventilation only: pass mixed air through at minimum flow.
		in = cabin.Inputs{
			SupplyTempC: mix,
			CoilTempC:   mix,
			Recirc:      dr,
			AirFlowKgS:  c.Model.Params().MinAirFlowKgS,
		}
	} else if cooling {
		in = cabin.Inputs{
			SupplyTempC: c.CoolSupplyC,
			CoilTempC:   c.CoolSupplyC,
			Recirc:      dr,
			AirFlowKgS:  c.OnAirFlowKgS,
		}
	} else {
		in = cabin.Inputs{
			SupplyTempC: c.HeatSupplyC,
			CoilTempC:   mix, // heater only; no cooling coil action
			Recirc:      dr,
			AirFlowKgS:  c.OnAirFlowKgS,
		}
	}
	c.Model.ClampInputsInPlace(&in, mix)
	// Thermostatic battery heating/cooling (no-op without the thermal
	// network) keeps the ladder total in cold-climate simulations.
	batt.apply(ctx, &in)
	return in
}
