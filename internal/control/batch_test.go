package control

import (
	"math"
	"testing"

	"evclimate/internal/cabin"
)

// batchCtxAt synthesizes a varied but deterministic per-lane, per-step
// context: alternating hot and cold excursions with drifting cabin
// temperature, so the batch walk exercises latching, release, and the
// derivative memory of the fuzzy lanes.
func batchCtxAt(lane, step int) StepContext {
	phase := float64(lane)*1.3 + float64(step)*0.7
	return StepContext{
		Time: float64(step), Dt: 1,
		CabinTempC: 24 + 8*math.Sin(phase),
		OutsideC:   20 + 15*math.Cos(phase/2),
		SolarW:     200 + 200*math.Sin(phase/3),
		TargetC:    24, ComfortLowC: 21, ComfortHighC: 27,
	}
}

// TestBatchMatchesScalarDecide walks batched on/off and fuzzy lanes
// through a mixed hot/cold context sequence alongside independent scalar
// controllers and requires every decision bit-identical — the
// controller-level half of the batch-vs-scalar contract (the sim
// package pins the closed-loop version).
func TestBatchMatchesScalarDecide(t *testing.T) {
	const lanes, steps = 5, 40
	builders := map[string]func(m *cabin.Model) Controller{
		"onoff": func(m *cabin.Model) Controller { return NewOnOff(m) },
		"fuzzy": func(m *cabin.Model) Controller { return NewFuzzy(m) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			batchLanes := make([]Controller, lanes)
			scalar := make([]Controller, lanes)
			for i := range batchLanes {
				batchLanes[i] = build(model(t))
				scalar[i] = build(model(t))
			}
			b := Batch(batchLanes)
			if _, isScalar := b.(*ScalarBatch); isScalar {
				t.Fatalf("Batch(%s) fell back to ScalarBatch; expected SoA fast path", name)
			}
			if b.Lanes() != lanes {
				t.Fatalf("Lanes() = %d, want %d", b.Lanes(), lanes)
			}
			ctxs := make([]StepContext, lanes)
			out := make([]cabin.Inputs, lanes)
			for step := 0; step < steps; step++ {
				for i := range ctxs {
					ctxs[i] = batchCtxAt(i, step)
				}
				b.DecideAll(ctxs, out)
				for i := range scalar {
					want := scalar[i].Decide(ctxs[i])
					if out[i] != want {
						t.Fatalf("step %d lane %d: batch %+v != scalar %+v", step, i, out[i], want)
					}
				}
			}
			// After SyncLanes the lane controllers carry the batch state:
			// their next scalar decision continues the batch trajectory.
			s, ok := b.(LaneSyncer)
			if !ok {
				t.Fatalf("%T does not implement LaneSyncer", b)
			}
			s.SyncLanes()
			for i := range scalar {
				ctx := batchCtxAt(i, steps)
				if got, want := b.Lane(i).Decide(ctx), scalar[i].Decide(ctx); got != want {
					t.Fatalf("lane %d: post-sync scalar decision diverged: %+v != %+v", i, got, want)
				}
			}
		})
	}
}

// TestBatchablePredicate pins the sweep engine's grouping predicate: SoA
// fast paths exist exactly for the on/off and fuzzy baselines.
func TestBatchablePredicate(t *testing.T) {
	m, err := cabin.New(cabin.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !Batchable(NewOnOff(m)) || !Batchable(NewFuzzy(m)) {
		t.Error("on/off and fuzzy must be batchable")
	}
	if Batchable(NewPID(m)) {
		t.Error("PID has no SoA fast path and must not report batchable")
	}
	if Batchable(&Constant{Model: m}) {
		t.Error("constant controller must not report batchable")
	}
}

// TestBatchMixedFamiliesFallsBack checks that a mixed-family lane set
// routes through ScalarBatch (per-lane scalar stepping) instead of an
// SoA path that would misapply one family's kernel to the other.
func TestBatchMixedFamiliesFallsBack(t *testing.T) {
	m, err := cabin.New(cabin.Default())
	if err != nil {
		t.Fatal(err)
	}
	b := Batch([]Controller{NewOnOff(m), NewFuzzy(m)})
	if _, ok := b.(*ScalarBatch); !ok {
		t.Fatalf("mixed families: got %T, want *ScalarBatch", b)
	}
}
