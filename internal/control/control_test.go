package control

import (
	"math"
	"testing"

	"evclimate/internal/cabin"
)

func model(t *testing.T) *cabin.Model {
	t.Helper()
	m, err := cabin.New(cabin.Default())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func hotCtx(cabinC float64) StepContext {
	return StepContext{
		Time: 0, Dt: 1,
		CabinTempC: cabinC, OutsideC: 35, SolarW: 400,
		TargetC: 24, ComfortLowC: 21, ComfortHighC: 27,
	}
}

func coldCtx(cabinC float64) StepContext {
	return StepContext{
		Time: 0, Dt: 1,
		CabinTempC: cabinC, OutsideC: 0, SolarW: 0,
		TargetC: 24, ComfortLowC: 21, ComfortHighC: 27,
	}
}

func TestOnOffLatchesOnWhenHot(t *testing.T) {
	m := model(t)
	c := NewOnOff(m)
	c.Reset()
	in := c.Decide(hotCtx(30))
	// Cooling: supply at the cold setpoint, full configured flow.
	if in.SupplyTempC > 15 {
		t.Errorf("supply = %v, want cold", in.SupplyTempC)
	}
	if in.AirFlowKgS < 0.15 {
		t.Errorf("flow = %v, want high", in.AirFlowKgS)
	}
	// Stays on just above the release point.
	in = c.Decide(hotCtx(24))
	if in.AirFlowKgS < 0.15 {
		t.Error("released too early (no hysteresis)")
	}
	// Releases after overshooting to target − 2/3·band (band = 3 here).
	in = c.Decide(hotCtx(21.9))
	if in.AirFlowKgS > m.Params().MinAirFlowKgS+1e-9 {
		t.Errorf("did not release at 21.9 °C: flow %v", in.AirFlowKgS)
	}
}

func TestOnOffHeatsWhenCold(t *testing.T) {
	m := model(t)
	c := NewOnOff(m)
	c.Reset()
	in := c.Decide(coldCtx(18))
	// The commanded 52 °C supply is reduced by the heater power cap:
	// heating 0.22 kg/s of 0 °C fresh air allows only ≈ 24 °C supply at
	// 6 kW. It must still be above the cabin temperature.
	if in.SupplyTempC < 21 {
		t.Errorf("supply = %v, want above cabin", in.SupplyTempC)
	}
	pw := m.PowersFor(in, m.MixTemp(0, 18, in.Recirc))
	if pw.HeaterW < 0.9*m.Params().MaxHeaterPowerW {
		t.Errorf("heater at %v W, want near its %v W limit", pw.HeaterW, m.Params().MaxHeaterPowerW)
	}
	// Heating uses the heater only: coil stays at the mix temperature.
	mix := m.MixTemp(0, 18, in.Recirc)
	if math.Abs(in.CoilTempC-math.Max(mix, m.Params().MinCoilTempC)) > 3 {
		t.Errorf("coil = %v, want ≈ mix %v (no cooling while heating)", in.CoilTempC, mix)
	}
}

func TestOnOffVentilatesInsideBand(t *testing.T) {
	m := model(t)
	c := NewOnOff(m)
	c.Reset()
	in := c.Decide(hotCtx(24))
	if in.AirFlowKgS > m.Params().MinAirFlowKgS+1e-9 {
		t.Errorf("flow inside band = %v, want min", in.AirFlowKgS)
	}
	pw := m.PowersFor(in, m.MixTemp(35, 24, in.Recirc))
	if pw.HeaterW+pw.CoolerW > 1 {
		t.Errorf("coil power inside band = %v, want ~0", pw.HeaterW+pw.CoolerW)
	}
}

func TestOnOffRespectsConstraints(t *testing.T) {
	m := model(t)
	c := NewOnOff(m)
	for _, tz := range []float64{-10, 0, 20, 24, 30, 45} {
		for _, ctx := range []StepContext{hotCtx(tz), coldCtx(tz)} {
			in := c.Decide(ctx)
			mix := m.MixTemp(ctx.OutsideC, tz, in.Recirc)
			if err := m.CheckInputs(in, mix, 1e-6); err != nil {
				t.Errorf("Tz=%v: %v", tz, err)
			}
		}
	}
}

func TestFuzzyProportionalResponse(t *testing.T) {
	m := model(t)
	c := NewFuzzy(m)
	c.Reset()
	// Far above target: hard cooling.
	far := c.Decide(hotCtx(32))
	c.Reset()
	near := c.Decide(hotCtx(25))
	pwFar := m.PowersFor(far, m.MixTemp(35, 32, far.Recirc)).Total()
	pwNear := m.PowersFor(near, m.MixTemp(35, 25, near.Recirc)).Total()
	if pwFar <= pwNear {
		t.Errorf("fuzzy not proportional: far %v W ≤ near %v W", pwFar, pwNear)
	}
}

func TestFuzzyHeatsAndCools(t *testing.T) {
	m := model(t)
	c := NewFuzzy(m)
	c.Reset()
	cool := c.Decide(hotCtx(30))
	if cool.SupplyTempC >= 24 {
		t.Errorf("cooling supply %v, want below target", cool.SupplyTempC)
	}
	c.Reset()
	heat := c.Decide(coldCtx(18))
	if heat.SupplyTempC <= 24 {
		t.Errorf("heating supply %v, want above target", heat.SupplyTempC)
	}
}

func TestFuzzyIdleNearTarget(t *testing.T) {
	m := model(t)
	c := NewFuzzy(m)
	c.Reset()
	// Two consecutive steps at exactly the target with no trend.
	c.Decide(hotCtx(24))
	in := c.Decide(hotCtx(24))
	if in.AirFlowKgS > 0.08 {
		t.Errorf("flow near target = %v, want near minimum", in.AirFlowKgS)
	}
}

func TestFuzzyConstraintsAlwaysSatisfied(t *testing.T) {
	m := model(t)
	c := NewFuzzy(m)
	c.Reset()
	for tz := -5.0; tz <= 45; tz += 2.5 {
		for _, ctx := range []StepContext{hotCtx(tz), coldCtx(tz)} {
			in := c.Decide(ctx)
			mix := m.MixTemp(ctx.OutsideC, tz, in.Recirc)
			if err := m.CheckInputs(in, mix, 1e-6); err != nil {
				t.Errorf("Tz=%v To=%v: %v", tz, ctx.OutsideC, err)
			}
		}
	}
}

func TestPIDDirectionAndMagnitude(t *testing.T) {
	m := model(t)
	c := NewPID(m)
	c.Reset()
	cool := c.Decide(hotCtx(30))
	if cool.SupplyTempC >= 24 {
		t.Errorf("PID cooling supply %v", cool.SupplyTempC)
	}
	c.Reset()
	heat := c.Decide(coldCtx(15))
	if heat.SupplyTempC <= 24 {
		t.Errorf("PID heating supply %v", heat.SupplyTempC)
	}
	// Reset clears the integrator.
	c.Reset()
	if c.integral != 0 || c.hasPrev {
		t.Error("Reset did not clear PID state")
	}
}

func TestPIDAntiWindup(t *testing.T) {
	m := model(t)
	c := NewPID(m)
	c.Reset()
	// Hold a large error for a long time; the integral term must stay
	// bounded so recovery is not delayed.
	for i := 0; i < 10000; i++ {
		c.Decide(hotCtx(30))
	}
	if c.Ki*c.integral > 0.5+1e-9 {
		t.Errorf("integral term %v exceeded anti-windup bound", c.Ki*c.integral)
	}
}

func TestConstantController(t *testing.T) {
	m := model(t)
	want := cabin.Inputs{SupplyTempC: 20, CoilTempC: 20, Recirc: 0.5, AirFlowKgS: 0.1}
	c := &Constant{Model: m, Inputs: want}
	in := c.Decide(hotCtx(24))
	if in != want {
		t.Errorf("constant inputs altered: %+v", in)
	}
	// Out-of-range inputs are clamped.
	c2 := &Constant{Model: m, Inputs: cabin.Inputs{SupplyTempC: 99, CoilTempC: -20, Recirc: 3, AirFlowKgS: 9}}
	in2 := c2.Decide(hotCtx(24))
	mix := m.MixTemp(35, 24, in2.Recirc)
	if err := m.CheckInputs(in2, mix, 1e-6); err != nil {
		t.Errorf("clamped constant inputs invalid: %v", err)
	}
}

func TestCoolingNeededModeSelection(t *testing.T) {
	// Hot ambient → cooling; cold ambient → heating; mild ambient with
	// strong sun → still cooling.
	hot, cold := hotCtx(24), coldCtx(24)
	if !coolingNeeded(&hot) {
		t.Error("35 °C day should need cooling")
	}
	if coolingNeeded(&cold) {
		t.Error("0 °C day should need heating")
	}
	sunny := coldCtx(24)
	sunny.OutsideC = 22
	sunny.SolarW = 400
	if !coolingNeeded(&sunny) {
		t.Error("22 °C + strong sun should need cooling")
	}
}

func TestControllerNames(t *testing.T) {
	m := model(t)
	for ctrl, want := range map[Controller]string{
		NewOnOff(m):         "On/Off",
		NewFuzzy(m):         "Fuzzy-based",
		NewPID(m):           "PID",
		&Constant{Model: m}: "Constant",
	} {
		if ctrl.Name() != want {
			t.Errorf("Name() = %q, want %q", ctrl.Name(), want)
		}
	}
}

func TestForecastLen(t *testing.T) {
	f := Forecast{Dt: 1, MotorPowerW: make([]float64, 7), OutsideC: make([]float64, 7), SolarW: make([]float64, 7)}
	if f.Len() != 7 {
		t.Errorf("Len = %d", f.Len())
	}
	if (Forecast{}).Len() != 0 {
		t.Error("empty forecast Len != 0")
	}
}
