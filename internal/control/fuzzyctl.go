package control

import (
	"sync"

	"evclimate/internal/cabin"
	"evclimate/internal/fuzzy"
)

// Fuzzy is the fuzzy-based temperature-control baseline ([10], Ibrahim et
// al.): a Mamdani controller on the temperature error and its rate that
// outputs a normalized HVAC intensity, mapped onto air flow and coil
// temperatures. It stabilizes the cabin temperature tightly (Fig. 5's
// flattest trace) without any knowledge of the battery.
type Fuzzy struct {
	// Model supplies actuator limits.
	Model *cabin.Model
	// Recirc is the fixed damper setting (default 0.5).
	Recirc float64
	// MaxCoolSupplyDropC is the supply-air drop below target at full
	// cooling intensity (default 16 °C).
	MaxCoolSupplyDropC float64
	// MaxHeatSupplyRiseC is the supply-air rise above target at full
	// heating intensity (default 28 °C).
	MaxHeatSupplyRiseC float64

	sys      *fuzzy.System
	compiled *fuzzy.Compiled
	evalIn   [2]float64
	prevErr  float64
	hasPrev  bool
	batt     batteryThermostat
}

// The baseline rule base is fixed, so it compiles once per process; each
// controller instance clones the compiled form (shared degree tables,
// private scratch) instead of re-walking maps per step. A compile
// failure — impossible for the static rule base, but handled — leaves
// compiled nil and Decide falls back to the interpreter.
var (
	fuzzyCompileOnce          sync.Once
	fuzzyCompiledBase         *fuzzy.Compiled
	fuzzyErrIdx, fuzzyDerrIdx int
)

// NewFuzzy builds the baseline with the rule base of [10]: 3×3 rules on
// (error, error rate) → intensity.
func NewFuzzy(m *cabin.Model) *Fuzzy {
	// Error: Tz − target, °C. Positive = too hot.
	errV := fuzzy.NewVariable("err", -6, 6).
		AddTerm("neg", fuzzy.Triangle{A: -6, B: -6, C: 0}).
		AddTerm("zero", fuzzy.Triangle{A: -0.8, B: 0, C: 0.8}).
		AddTerm("pos", fuzzy.Triangle{A: 0, B: 6, C: 6})
	// Error rate, °C/s.
	dErrV := fuzzy.NewVariable("derr", -0.2, 0.2).
		AddTerm("falling", fuzzy.Triangle{A: -0.2, B: -0.2, C: 0}).
		AddTerm("steady", fuzzy.Triangle{A: -0.03, B: 0, C: 0.03}).
		AddTerm("rising", fuzzy.Triangle{A: 0, B: 0.2, C: 0.2})
	// Intensity: −1 = full heating, +1 = full cooling.
	outV := fuzzy.NewVariable("u", -1, 1).
		AddTerm("heathard", fuzzy.Triangle{A: -1, B: -1, C: -0.5}).
		AddTerm("heat", fuzzy.Triangle{A: -1, B: -0.5, C: 0}).
		AddTerm("idle", fuzzy.Triangle{A: -0.15, B: 0, C: 0.15}).
		AddTerm("cool", fuzzy.Triangle{A: 0, B: 0.5, C: 1}).
		AddTerm("coolhard", fuzzy.Triangle{A: 0.5, B: 1, C: 1})

	rule := func(e, d, u string) fuzzy.Rule {
		return fuzzy.Rule{
			If:   []fuzzy.Cond{{Var: "err", Term: e}, {Var: "derr", Term: d}},
			Then: fuzzy.Cond{Var: "u", Term: u},
		}
	}
	sys := fuzzy.NewSystem(outV, errV, dErrV).
		AddRule(rule("pos", "rising", "coolhard")).
		AddRule(rule("pos", "steady", "coolhard")).
		AddRule(rule("pos", "falling", "cool")).
		AddRule(rule("zero", "rising", "cool")).
		AddRule(rule("zero", "steady", "idle")).
		AddRule(rule("zero", "falling", "heat")).
		AddRule(rule("neg", "rising", "heat")).
		AddRule(rule("neg", "steady", "heathard")).
		AddRule(rule("neg", "falling", "heathard"))

	fuzzyCompileOnce.Do(func() {
		c, err := sys.Compile()
		if err != nil {
			return
		}
		for i, name := range c.InputNames() {
			switch name {
			case "err":
				fuzzyErrIdx = i
			case "derr":
				fuzzyDerrIdx = i
			}
		}
		fuzzyCompiledBase = c
	})
	f := &Fuzzy{
		Model:              m,
		Recirc:             0.5,
		MaxCoolSupplyDropC: 16,
		MaxHeatSupplyRiseC: 28,
		sys:                sys,
	}
	if fuzzyCompiledBase != nil {
		f.compiled = fuzzyCompiledBase.Clone()
	}
	return f
}

// Name implements Controller.
func (c *Fuzzy) Name() string { return "Fuzzy-based" }

// Reset implements Controller.
func (c *Fuzzy) Reset() {
	c.prevErr = 0
	c.hasPrev = false
	c.batt.reset()
}

// Decide implements Controller.
func (c *Fuzzy) Decide(ctx StepContext) cabin.Inputs {
	return c.decideLane(&ctx, &c.prevErr, &c.hasPrev, &c.batt)
}

// decideLane is the decision kernel shared by the scalar controller and
// BatchFuzzy lanes: the arithmetic of Decide with the derivative memory
// and battery latch supplied by the caller, so the batch path's SoA
// state arrays produce the same bits the scalar fields would.
func (c *Fuzzy) decideLane(ctx *StepContext, prevErr *float64, hasPrev *bool, batt *batteryThermostat) cabin.Inputs {
	e := ctx.CabinTempC - ctx.TargetC
	var de float64
	if *hasPrev && ctx.Dt > 0 {
		de = (e - *prevErr) / ctx.Dt
	}
	*prevErr = e
	*hasPrev = true

	var u float64
	var err error
	if c.compiled != nil {
		c.evalIn[fuzzyErrIdx] = e
		c.evalIn[fuzzyDerrIdx] = de
		u, err = c.compiled.Evaluate(c.evalIn[:])
	} else {
		u, err = c.sys.Evaluate(map[string]float64{"err": e, "derr": de})
	}
	if err != nil {
		u = 0 // rule base covers the universe; defensive fallback
	}

	p := c.Model.Params()
	mix := c.Model.MixTemp(ctx.OutsideC, ctx.CabinTempC, c.Recirc)
	mag := u
	if mag < 0 {
		mag = -mag
	}
	// Air flow scales with intensity; a small floor keeps ventilation.
	mz := p.MinAirFlowKgS + mag*(p.MaxAirFlowKgS-p.MinAirFlowKgS)*0.85
	var in cabin.Inputs
	switch {
	case u > 0.02: // cooling
		ts := ctx.TargetC - u*c.MaxCoolSupplyDropC
		in = cabin.Inputs{SupplyTempC: ts, CoilTempC: ts, Recirc: c.Recirc, AirFlowKgS: mz}
	case u < -0.02: // heating
		ts := ctx.TargetC - u*c.MaxHeatSupplyRiseC // u negative → rise
		in = cabin.Inputs{SupplyTempC: ts, CoilTempC: mix, Recirc: c.Recirc, AirFlowKgS: mz}
	default: // idle: ventilate
		in = cabin.Inputs{SupplyTempC: mix, CoilTempC: mix, Recirc: c.Recirc, AirFlowKgS: p.MinAirFlowKgS}
	}
	c.Model.ClampInputsInPlace(&in, mix)
	// Thermostatic battery heating/cooling (no-op without the thermal
	// network) keeps the ladder total in cold-climate simulations.
	batt.apply(ctx, &in)
	return in
}
