// Package core implements the paper's contribution: the battery
// lifetime-aware automotive climate controller (Sec. III). At every
// control step it solves a receding-horizon optimal control problem over
// the discretized HVAC model (Eqs. 18–19) subject to the constraint set
// C1–C10, minimizing the Eq. 21 cost
//
//	C = Σ w1·(Pf + Pc + Ph) + w2·(SoC − SoCavg)² + w3·(Tz − Ttarget)²
//
// with Sequential Quadratic Programming (internal/sqp), warm-started from
// the previous step's shifted solution — Algorithm 1 of the paper. The
// SoC-deviation term couples the HVAC schedule to the predicted electric
// motor power: the optimizer throttles the HVAC during motor peaks and
// precools/preheats during valleys, flattening the SoC trajectory and
// thereby reducing SoH degradation (Eq. 15).
//
// Following the paper's Eq. 20 structure, the decision vector contains the
// state trajectory x (cabin temperature), the control inputs i = [Ts, Tc,
// dr, mz], and the auxiliary coil powers u = [Ph, Pc] tied to the inputs
// by nonlinear equality constraints and bounded 0 ≤ P ≤ Pmax. Keeping the
// coil powers as explicit nonnegative variables (rather than eliminating
// them) is essential: an eliminated bilinear power expression can go
// negative at infeasible SQP iterates, which the cost would reward,
// stalling the solver at constraint-violating points. Tm, Pf, Pe, and SoC
// are eliminated analytically (they are linear or depend only on single
// inputs), which is mathematically equivalent to the paper's full u
// vector.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/mat"
	"evclimate/internal/qp"
	"evclimate/internal/sqp"
	"evclimate/internal/telemetry"
	"evclimate/internal/units"
)

// Weights are the Eq. 21 cost weights.
type Weights struct {
	// Power is w1, applied to the summed HVAC electrical power in watts.
	Power float64
	// SoCDev is w2, applied to (SoC − SoCavg)² with SoC in percent.
	SoCDev float64
	// Comfort is w3, applied to (Tz − Ttarget)² in °C².
	Comfort float64
}

// DefaultWeights balances the three cost terms at their typical
// magnitudes (kilowatt HVAC powers, hundredth-of-a-percent SoC
// deviations, sub-degree tracking errors). The ordering matters: comfort
// tracking must dominate the SoC-deviation term, otherwise the optimizer
// parks the cabin at a comfort-zone boundary to avoid HVAC power ramps
// (the w2 term penalizes any asymmetric in-window power burst, including
// the one needed to reach the target).
func DefaultWeights() Weights {
	return Weights{Power: 2e-4, SoCDev: 50, Comfort: 2.0}
}

// EconomyWeights trades comfort tracking for range: the power term is an
// order of magnitude stronger, letting the cabin drift within the comfort
// zone when holding the exact target is expensive.
func EconomyWeights() Weights {
	return Weights{Power: 2e-3, SoCDev: 50, Comfort: 0.5}
}

// ComfortWeights pins the cabin to the target regardless of cost — the
// behaviour of a conventional comfort-first MPC, useful as an ablation
// reference.
func ComfortWeights() Weights {
	return Weights{Power: 2e-5, SoCDev: 10, Comfort: 10}
}

// Config assembles the MPC controller.
type Config struct {
	// Cabin is the HVAC plant parameter set the internal model uses.
	Cabin cabin.Params
	// Horizon is N, the number of prediction steps (default 12).
	Horizon int
	// Dt is the prediction step in seconds (default 5). The controller
	// may be called more often; it re-optimizes each call.
	Dt float64
	// Weights are the Eq. 21 weights.
	Weights Weights
	// BatteryCapacityAh and BatteryVoltageV parameterize the linear SoC
	// prediction model (Eq. 13 with I_eff ≈ I; the plant still applies
	// the full Peukert model — that mismatch is part of the co-sim).
	BatteryCapacityAh, BatteryVoltageV float64
	// AccessoryW is the constant accessory load added to the predicted
	// total power.
	AccessoryW float64
	// SQP tunes the per-step optimizer (zero value → sensible MPC
	// defaults: 30 iterations, 1e-4 tolerance).
	SQP sqp.Options
	// FunnelRateKps relaxes the comfort constraints into a shrinking
	// funnel when the cabin starts outside the comfort zone, at this
	// pull-down rate in K/s (default 0.04).
	FunnelRateKps float64
	// Telemetry, when non-nil and active, receives per-solve counters and
	// iteration histograms (mpc_solves_total{status}, mpc_sqp_iterations,
	// mpc_qp_iterations). Nil or Nop adds no overhead to Decide.
	Telemetry telemetry.Sink
	// Thermal enables the cold-climate battery-thermal co-scheduling
	// extension (see ThermalOptions). The zero value keeps the paper's
	// cabin-only controller bit-for-bit.
	Thermal ThermalOptions
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() Config {
	return Config{
		Cabin:             cabin.Default(),
		Horizon:           12,
		Dt:                5,
		Weights:           DefaultWeights(),
		BatteryCapacityAh: 66.2,
		BatteryVoltageV:   360,
		AccessoryW:        300,
	}
}

// Controller is the battery lifetime-aware MPC climate controller. It
// implements control.Controller.
type Controller struct {
	cfg   Config
	model *cabin.Model

	// Stage layout: sv variables, ne equality rows, ni inequality rows
	// per prediction step; offX is the in-stage offset of x_{k+1}. The
	// cabin-only problem is [Ts,Tc,dr,mz,Ph,Pc | x] (7/3/14); thermal
	// co-scheduling appends the battery branch and the pack state,
	// [Ts,Tc,dr,mz,Ph,Pc,Pbh,Pbc | x,Tb] (10/4/18). The values are fixed
	// in New; with thermal disabled every index expression evaluates
	// exactly as the original constants did, keeping the cabin-only
	// trajectory bit-identical.
	sv, ne, ni, offX int
	thermal          bool
	// kabEffWK is the coolant loop folded into an effective pack↔ambient
	// conductance for the one-state-per-stage pack prediction model.
	kabEffWK float64

	prevZ    []float64 // previous solution for warm starting (fixed buffer)
	havePrev bool      // prevZ holds a usable previous solution

	// Solver arena: the controller solves an identically-shaped NLP every
	// step, so the SQP workspace, the horizon forecast buffers, the warm
	// start vector and the cost scratch are allocated once in New and
	// reused for the life of the controller — steady-state Decide performs
	// no per-step allocation. The sqp.Problem closures are bound once here
	// too (they capture c and read c.hor, which buildHorizon refills in
	// place each step).
	sqpWork         *sqp.Workspace
	hor             horizonData
	prob            sqp.Problem
	z0              []float64
	socBuf, sensBuf []float64
	// Diagnostics aggregated over a run.
	solves, converged, stalled, failed, budget int
	totalSQPIters                              int
	// lastErr is the previous Decide's internal failure (nil when the
	// solve was healthy), surfaced through Healthy for supervisory
	// layers.
	lastErr error
	// lastSolve is the previous Decide's optimizer diagnostics, exposed
	// through control.SolveReporter for telemetry step spans.
	lastSolve control.SolveInfo
	// lastStructured records whether the previous solve stayed on the
	// stage-structured KKT path end to end.
	lastStructured bool

	// Telemetry instruments, nil unless the config carried an active
	// sink; nil instruments are no-ops so Decide never branches on them.
	telSolves  map[string]*telemetry.Counter
	telIters   *telemetry.Histogram
	telQPIters *telemetry.Histogram
	// telRTF is the real-time factor gauge: solve wall time ÷ control
	// period. Below 1 the controller keeps up with real time; the solve
	// is only timed when the gauge is bound, so inactive sinks see no
	// clock reads.
	telRTF *telemetry.Gauge
}

// New validates the configuration and builds the controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 12
	}
	if cfg.Dt <= 0 {
		cfg.Dt = 5
	}
	if cfg.Weights == (Weights{}) {
		cfg.Weights = DefaultWeights()
	}
	if cfg.Weights.Power < 0 || cfg.Weights.SoCDev < 0 || cfg.Weights.Comfort < 0 {
		return nil, errors.New("core: weights must be nonnegative")
	}
	if cfg.BatteryCapacityAh <= 0 || cfg.BatteryVoltageV <= 0 {
		return nil, fmt.Errorf("core: battery parameters (%v Ah, %v V) must be positive", cfg.BatteryCapacityAh, cfg.BatteryVoltageV)
	}
	if cfg.FunnelRateKps <= 0 {
		cfg.FunnelRateKps = 0.04
	}
	if cfg.SQP.MaxIter == 0 {
		cfg.SQP.MaxIter = 30
	}
	if cfg.SQP.Tol == 0 {
		cfg.SQP.Tol = 1e-4
	}
	if cfg.SQP.MinMeritDecrease == 0 {
		// Real-time budget: stop polishing once the merit stalls; the
		// warm-started next step re-optimizes anyway.
		cfg.SQP.MinMeritDecrease = 1e-4
	}
	if err := cfg.Thermal.validate(); err != nil {
		return nil, err
	}
	m, err := cabin.New(cfg.Cabin)
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, model: m}
	c.sv, c.ne, c.ni, c.offX = stageVars, 3, ineqPerStep, stageVars-1
	if cfg.Thermal.Enabled {
		c.thermal = true
		c.sv, c.ne, c.ni, c.offX = thermalStageVars, 4, thermalIneqPerStep, 8
		c.kabEffWK = cfg.Thermal.Network.EffectivePackAmbientUA()
	}
	n := cfg.Horizon
	c.hor = horizonData{
		motorW:     make([]float64, n),
		outsideC:   make([]float64, n),
		solarW:     make([]float64, n),
		coilFloorC: make([]float64, n),
		comfortLo:  make([]float64, n),
		comfortHi:  make([]float64, n),
		ah:         make([]float64, n),
		qjW:        make([]float64, n),
	}
	c.socBuf = make([]float64, n)
	c.sensBuf = make([]float64, n)
	c.z0 = make([]float64, c.nz())
	c.prevZ = make([]float64, c.nz())
	c.sqpWork = sqp.NewWorkspace()
	c.prob = sqp.Problem{
		N:         c.nz(),
		Objective: func(z []float64) float64 { return c.objective(z, &c.hor) },
		Gradient:  func(z, g []float64) { c.gradient(z, &c.hor, g) },
		MEq:       c.ne * n,
		Eq:        func(z, out []float64) { c.equalities(z, &c.hor, out) },
		EqJac:     func(z []float64, jac *mat.Dense) { c.equalitiesJac(z, &c.hor, jac) },
		MIneq:     n * c.ni,
		Ineq:      func(z, out []float64) { c.inequalities(z, &c.hor, out) },
		IneqJac:   func(z []float64, jac *mat.Dense) { c.inequalitiesJac(z, &c.hor, jac) },
		Stages:    c.horizonStructure(),
	}
	c.bindInstruments()
	return c, nil
}

// bindInstruments (re)resolves the solver instruments on the config's
// sink, detaching them when it is nil or inactive.
func (c *Controller) bindInstruments() {
	c.telSolves, c.telIters, c.telQPIters, c.telRTF = nil, nil, nil, nil
	tel := c.cfg.Telemetry
	if tel == nil || !tel.Active() {
		return
	}
	c.telSolves = make(map[string]*telemetry.Counter)
	for _, st := range []sqp.Status{sqp.Converged, sqp.MaxIterations, sqp.Stalled, sqp.Failed, sqp.BudgetExceeded} {
		c.telSolves[st.String()] = tel.Counter("mpc_solves_total", telemetry.L("status", st.String()))
	}
	c.telSolves["fallback"] = tel.Counter("mpc_solves_total", telemetry.L("status", "fallback"))
	c.telIters = tel.Histogram("mpc_sqp_iterations", telemetry.IterationBuckets)
	c.telQPIters = tel.Histogram("mpc_qp_iterations", telemetry.IterationBuckets)
	// Wall-clock derived; the "_real_time_factor" suffix keeps it out of
	// deterministic manifests (telemetry.DeterministicFilter).
	c.telRTF = tel.Gauge("mpc_real_time_factor")
}

// BindTelemetry implements control.TelemetryBinder: solver counters and
// iteration histograms move to the given sink.
func (c *Controller) BindTelemetry(tel telemetry.Sink) {
	c.cfg.Telemetry = tel
	c.bindInstruments()
}

// Name implements control.Controller.
func (c *Controller) Name() string {
	if c.cfg.Thermal.Enabled {
		return "Thermal Co-scheduling"
	}
	return "Battery Lifetime-aware"
}

// Structured reports whether the last Decide's SQP solve used the
// stage-structured (block-tridiagonal) KKT backend on every QP
// subproblem — false after a dense fallback, a safe-ventilation
// fallback, or before the first solve.
func (c *Controller) Structured() bool { return c.lastStructured }

// Reset implements control.Controller.
func (c *Controller) Reset() {
	c.havePrev = false
	c.solves, c.converged, c.stalled, c.failed, c.budget = 0, 0, 0, 0, 0
	c.totalSQPIters = 0
	c.lastErr = nil
	c.lastSolve = control.SolveInfo{}
}

// LastSolve implements control.SolveReporter.
func (c *Controller) LastSolve() control.SolveInfo { return c.lastSolve }

// Healthy implements control.HealthReporter: it reports the last
// Decide's internal failure — a solver that fell back to safe
// ventilation or ran out of budget — even when the emitted inputs were
// clamped into a valid range.
func (c *Controller) Healthy() error { return c.lastErr }

// Stats reports solver diagnostics since the last Reset.
type Stats struct {
	// Solves counts MPC steps.
	Solves int
	// Converged, Stalled, Failed count SQP termination kinds (the
	// remainder hit the iteration cap, which is normal for real-time
	// MPC).
	Converged, Stalled, Failed int
	// BudgetExceeded counts solves cut short by a hard iteration or
	// wall-clock budget (Options.HardIterCap / MaxTime, including
	// injected solver-budget faults).
	BudgetExceeded int
	// AvgSQPIters is the mean SQP iteration count per solve.
	AvgSQPIters float64
}

// Stats returns the diagnostics.
func (c *Controller) Stats() Stats {
	s := Stats{Solves: c.solves, Converged: c.converged, Stalled: c.stalled, Failed: c.failed, BudgetExceeded: c.budget}
	if c.solves > 0 {
		s.AvgSQPIters = float64(c.totalSQPIters) / float64(c.solves)
	}
	return s
}

// horizonData is the exogenous forecast resampled onto the MPC grid.
type horizonData struct {
	n            int
	dt           float64
	motorW       []float64 // P_e per step
	outsideC     []float64 // T_o per step
	solarW       []float64
	coilFloorC   []float64 // effective C5 lower bound per step
	comfortLo    []float64 // funnelled C2 bounds per step (for x_{k+1})
	comfortHi    []float64
	tz0, soc0    float64
	targetC      float64
	kappaPerWatt float64 // SoC percent lost per W over one step
	// ah is the per-stage heater power coefficient: supply heat
	// mz·cp·(Ts−Tc) divided by the stage's electrical conversion factor
	// (EtaHeat cabin-only; the heat-pump COP at the forecast ambient, or
	// the PTC efficiency below cutoff, in thermal mode), in
	// W/(kg/s·K).
	ah []float64
	// tb0 and qjW are the thermal extension's measured initial pack
	// temperature and per-stage Joule-heat forecast (I²·R(tb0) at the
	// forecast motor current), W.
	tb0 float64
	qjW []float64
}

// buildHorizon resamples the StepContext forecast onto the MPC grid,
// refilling the controller's persistent horizon buffers in place (every
// entry is overwritten each call).
func (c *Controller) buildHorizon(ctx control.StepContext) *horizonData {
	n := c.cfg.Horizon
	h := &c.hor
	h.n, h.dt = n, c.cfg.Dt
	h.tz0 = ctx.CabinTempC
	h.soc0 = ctx.SoC
	h.targetC = ctx.TargetC
	h.tb0 = ctx.PackTempC
	// SoC percent drained per watt over one prediction step (Eq. 13 with
	// I_eff ≈ I).
	h.kappaPerWatt = 100 * c.cfg.Dt / (units.SecondsPerHour * c.cfg.BatteryCapacityAh * c.cfg.BatteryVoltageV)

	f := ctx.Forecast
	for k := 0; k < n; k++ {
		tk := float64(k) * c.cfg.Dt
		if f.Len() > 0 && f.Dt > 0 {
			idx := int(tk / f.Dt)
			if idx >= f.Len() {
				idx = f.Len() - 1
			}
			h.motorW[k] = f.MotorPowerW[idx]
			h.outsideC[k] = f.OutsideC[idx]
			h.solarW[k] = f.SolarW[idx]
		} else {
			h.motorW[k] = ctx.MotorPowerW
			h.outsideC[k] = ctx.OutsideC
			h.solarW[k] = ctx.SolarW
		}
		h.coilFloorC[k] = math.Min(c.cfg.Cabin.MinCoilTempC, h.outsideC[k])
		if c.thermal {
			eff, _ := c.cfg.Thermal.HeatPump.Heating(h.outsideC[k])
			h.ah[k] = c.cfg.Cabin.AirCpJKgK / eff
			iPred := (h.motorW[k] + c.cfg.AccessoryW) / c.cfg.BatteryVoltageV
			h.qjW[k] = iPred * iPred * c.cfg.Thermal.Network.PackResistanceOhm(h.tb0)
		} else {
			h.ah[k] = c.cfg.Cabin.AirCpJKgK / c.cfg.Cabin.EtaHeat
		}

		// Comfort funnel: when the cabin starts outside the zone, the
		// bound relaxes to the reachable envelope and tightens along the
		// horizon at FunnelRateKps, keeping the horizon problem feasible
		// during pull-down/warm-up.
		pull := c.cfg.FunnelRateKps * (tk + c.cfg.Dt)
		lo, hi := ctx.ComfortLowC, ctx.ComfortHighC
		if ctx.CabinTempC > hi {
			hi = math.Max(hi, ctx.CabinTempC+0.2-pull)
		}
		if ctx.CabinTempC < lo {
			lo = math.Min(lo, ctx.CabinTempC-0.2+pull)
		}
		h.comfortLo[k] = lo
		h.comfortHi[k] = hi
	}
	return h
}

// Variable layout: stage-major (multiple-shooting order). Stage k owns
// sv contiguous variables; cabin-only (sv = 7)
//
//	z[7k+0..5]   [Ts_k, Tc_k, dr_k, mz_k, Ph_k, Pc_k]   inputs + coil powers
//	z[7k+6]      x_{k+1}                                next cabin temperature
//
// and thermal co-scheduling (sv = 10)
//
//	z[10k+0..5]  [Ts_k, Tc_k, dr_k, mz_k, Ph_k, Pc_k]   inputs + coil powers
//	z[10k+6..7]  [Pbh_k, Pbc_k]                         battery heater/chiller, kW
//	z[10k+8]     x_{k+1}                                next cabin temperature
//	z[10k+9]     Tb_{k+1}                               next pack temperature
//
// so every constraint of stage k touches only the variables of stages
// k−1 (through x_k, Tb_k) and k. That is exactly the backward-support
// contract of qp.StageStructure: the SQP subproblems factor
// block-tridiagonally instead of densely at either stride. (The paper's
// Eq. 20 z = [x, i, u] grouping is mathematically identical — this is a
// permutation.)
func (c *Controller) idxX(k int) int  { return c.sv*(k-1) + c.offX } // x_k, k ≥ 1
func (c *Controller) idxTs(k int) int { return c.sv * k }
func (c *Controller) idxTc(k int) int { return c.sv*k + 1 }
func (c *Controller) idxDr(k int) int { return c.sv*k + 2 }
func (c *Controller) idxMz(k int) int { return c.sv*k + 3 }
func (c *Controller) idxPh(k int) int { return c.sv*k + 4 }
func (c *Controller) idxPc(k int) int { return c.sv*k + 5 }

// Battery-branch and pack-state indices (thermal co-scheduling only).
func (c *Controller) idxBh(k int) int { return c.sv*k + 6 }
func (c *Controller) idxBc(k int) int { return c.sv*k + 7 }
func (c *Controller) idxTb(k int) int { return c.sv*(k-1) + 9 } // Tb_k, k ≥ 1

// nz returns the decision-vector length.
func (c *Controller) nz() int { return c.sv * c.cfg.Horizon }

// stageVars and thermalStageVars are the per-stage variable counts of
// the two layouts above.
const (
	stageVars        = 7
	thermalStageVars = 10
)

// horizonStructure declares the stage structure of the horizon NLP for
// the structured QP backend: sv variables, ne equality rows (dynamics,
// heater power, cooler power, and in thermal mode the pack dynamics) and
// ni inequality rows per prediction step.
func (c *Controller) horizonStructure() *qp.StageStructure {
	return qp.UniformStages(c.cfg.Horizon, c.sv, c.ne, c.ni)
}

// stateAt returns the cabin temperature at the start of step k and
// whether it is a decision variable (k ≥ 1).
func (c *Controller) stateAt(z []float64, h *horizonData, k int) (float64, bool) {
	if k == 0 {
		return h.tz0, false
	}
	return z[c.idxX(k)], true
}

// packAt returns the pack temperature at the start of step k and whether
// it is a decision variable (k ≥ 1). Thermal co-scheduling only.
func (c *Controller) packAt(z []float64, h *horizonData, k int) (float64, bool) {
	if k == 0 {
		return h.tb0, false
	}
	return z[c.idxTb(k)], true
}

// hvacPowerAt returns Ph + Pc + Pf — plus the battery heater/chiller
// branch in thermal mode — at step k for iterate z, in watts.
// The coil-power decision variables are stored in kilowatts so all
// decision variables share the same order of magnitude (important for the
// BFGS Hessian seed in the SQP solver).
func (c *Controller) hvacPowerAt(z []float64, h *horizonData, k int) float64 {
	mz := z[c.idxMz(k)]
	pw := 1000*(z[c.idxPh(k)]+z[c.idxPc(k)]) + c.cfg.Cabin.FanCoeffW*mz*mz
	if c.thermal {
		pw += 1000 * (z[c.idxBh(k)] + z[c.idxBc(k)])
	}
	return pw
}

// socTrajectory returns SoC_1..SoC_N for iterate z, written into the
// controller's scratch buffer (overwritten on every call).
func (c *Controller) socTrajectory(z []float64, h *horizonData) []float64 {
	soc := c.socBuf
	s := h.soc0
	for k := 0; k < h.n; k++ {
		total := h.motorW[k] + c.hvacPowerAt(z, h, k) + c.cfg.AccessoryW
		s -= h.kappaPerWatt * total
		soc[k] = s
	}
	return soc
}

// objective evaluates the Eq. 21 cost.
func (c *Controller) objective(z []float64, h *horizonData) float64 {
	w := c.cfg.Weights
	var cost float64
	soc := c.socTrajectory(z, h)
	var socAvg float64
	for _, s := range soc {
		socAvg += s
	}
	socAvg /= float64(h.n)
	for k := 0; k < h.n; k++ {
		cost += w.Power * c.hvacPowerAt(z, h, k)
		e := soc[k] - socAvg
		cost += w.SoCDev * e * e
		d := z[c.idxX(k+1)] - h.targetC
		cost += w.Comfort * d * d
	}
	// Terminal comfort cost: without it the receding horizon ratchets the
	// cabin toward a comfort-zone boundary, since each 60 s window sees a
	// tiny drift as nearly free. Weighting the final state as strongly as
	// the whole running cost anchors the trajectory at the target.
	dN := z[c.idxX(h.n)] - h.targetC
	cost += w.Comfort * float64(h.n) * dN * dN
	if c.thermal {
		// Soft pack-temperature comfort band (C¹ relu²): excursions below
		// BandLoC price lithium-plating-prone cold cycling, above BandHiC
		// Arrhenius-accelerated fade. This is the ΔSoH term of the
		// co-scheduling cost.
		wb := c.cfg.Thermal.BandWeight
		for k := 1; k <= h.n; k++ {
			tb := z[c.idxTb(k)]
			if d := c.cfg.Thermal.BandLoC - tb; d > 0 {
				cost += wb * d * d
			}
			if d := tb - c.cfg.Thermal.BandHiC; d > 0 {
				cost += wb * d * d
			}
		}
	}
	return cost
}

// costPowerSens returns dC/dP_k for each step: the sensitivity of the
// cost to the step-k HVAC power through the w1 term and the SoC chain.
// e_j = SoC_j − SoCavg sums to zero, so the mean-shift term cancels and
// dC/dP_k = w1 − 2·w2·κ·Σ_{j≥k+1} e_j.
func (c *Controller) costPowerSens(z []float64, h *horizonData) []float64 {
	w := c.cfg.Weights
	soc := c.socTrajectory(z, h)
	var socAvg float64
	for _, s := range soc {
		socAvg += s
	}
	socAvg /= float64(h.n)
	sens := c.sensBuf
	tail := 0.0
	for k := h.n - 1; k >= 0; k-- {
		tail += soc[k] - socAvg
		sens[k] = w.Power - 2*w.SoCDev*h.kappaPerWatt*tail
	}
	return sens
}

// gradient writes the analytic cost gradient.
func (c *Controller) gradient(z []float64, h *horizonData, grad []float64) {
	for i := range grad {
		grad[i] = 0
	}
	w := c.cfg.Weights
	sens := c.costPowerSens(z, h)
	for k := 0; k < h.n; k++ {
		dCdP := sens[k]
		grad[c.idxPh(k)] += dCdP * 1000
		grad[c.idxPc(k)] += dCdP * 1000
		if c.thermal {
			grad[c.idxBh(k)] += dCdP * 1000
			grad[c.idxBc(k)] += dCdP * 1000
		}
		grad[c.idxMz(k)] += dCdP * 2 * c.cfg.Cabin.FanCoeffW * z[c.idxMz(k)]
		grad[c.idxX(k+1)] += 2 * w.Comfort * (z[c.idxX(k+1)] - h.targetC)
	}
	grad[c.idxX(h.n)] += 2 * w.Comfort * float64(h.n) * (z[c.idxX(h.n)] - h.targetC)
	if c.thermal {
		wb := c.cfg.Thermal.BandWeight
		for k := 1; k <= h.n; k++ {
			tb := z[c.idxTb(k)]
			if d := c.cfg.Thermal.BandLoC - tb; d > 0 {
				grad[c.idxTb(k)] -= 2 * wb * d
			}
			if d := tb - c.cfg.Thermal.BandHiC; d > 0 {
				grad[c.idxTb(k)] += 2 * wb * d
			}
		}
	}
}

// Equality constraints, stage-major, ne per step k (rows at ne·k+…):
//
//	row +0 : cabin dynamics residual (Eqs. 18–19, trapezoidal), scaled by
//	         Δt/Mc so it reads in kelvins; in thermal mode the heat input
//	         gains the pack→cabin conduction K_bc·(T̄b − x̄)
//	row +1 : Ph_k − (cp/η_k)·mz·(Ts − Tc)/1000 = 0   (Eq. 10, kW; η_k is
//	         EtaHeat cabin-only, the heat-pump conversion in thermal mode)
//	row +2 : Pc_k − (cp/ηc)·mz·(Tm − Tc)/1000 = 0    (Eqs. 9, 11, kW)
//	row +3 : (thermal only) pack dynamics residual, trapezoidal in Tb,
//	         kelvins: conduction to ambient (coolant loop folded into
//	         kabEffWK) and cabin, the forecast Joule heat, and the battery
//	         heater/chiller branch (branch variables in kW)
func (c *Controller) equalities(z []float64, h *horizonData, out []float64) {
	p := c.cfg.Cabin
	ac := p.AirCpJKgK / p.EtaCool
	net := &c.cfg.Thermal.Network
	kbc := net.UAPackCabinWK
	for k := 0; k < h.n; k++ {
		xk, _ := c.stateAt(z, h, k)
		xk1 := z[c.idxX(k+1)]
		ts := z[c.idxTs(k)]
		tc := z[c.idxTc(k)]
		dr := z[c.idxDr(k)]
		mz := z[c.idxMz(k)]
		xbar := (xk + xk1) / 2
		q := h.solarW[k] + p.ShellUAWK*(h.outsideC[k]-xbar)
		row := c.ne * k
		if c.thermal {
			tbk, _ := c.packAt(z, h, k)
			tbk1 := z[c.idxTb(k+1)]
			tbbar := (tbk + tbk1) / 2
			q += kbc * (tbbar - xbar)
			scale := h.dt / net.PackHeatCapJK
			qb := h.qjW[k] + c.kabEffWK*(h.outsideC[k]-tbbar) + kbc*(xbar-tbbar) +
				1000*(net.HeaterEff*z[c.idxBh(k)]-net.ChillerCOP*z[c.idxBc(k)])
			out[row+3] = (tbk1 - tbk) - scale*qb
		}
		supply := mz * p.AirCpJKgK * (ts - xbar)
		rowScale := h.dt / p.ThermalCapacitanceJK
		out[row] = (xk1 - xk) - rowScale*(q+supply)

		tm := (1-dr)*h.outsideC[k] + dr*xk
		out[row+1] = z[c.idxPh(k)] - h.ah[k]*mz*(ts-tc)/1000
		out[row+2] = z[c.idxPc(k)] - ac*mz*(tm-tc)/1000
	}
}

// equalitiesJac writes the Jacobian of the equality constraints.
func (c *Controller) equalitiesJac(z []float64, h *horizonData, jac *mat.Dense) {
	p := c.cfg.Cabin
	ac := p.AirCpJKgK / p.EtaCool
	net := &c.cfg.Thermal.Network
	kbc := net.UAPackCabinWK
	for k := 0; k < h.n; k++ {
		ts := z[c.idxTs(k)]
		tc := z[c.idxTc(k)]
		dr := z[c.idxDr(k)]
		mz := z[c.idxMz(k)]
		xk, xIsVar := c.stateAt(z, h, k)
		xk1 := z[c.idxX(k+1)]
		xbar := (xk + xk1) / 2

		// Dynamics row (scaled by Δt/Mc). The trapezoidal x̄ contributes
		// half of each conductance to both endpoint states.
		rowScale := h.dt / p.ThermalCapacitanceJK
		row := c.ne * k
		sumHalf := p.ShellUAWK/2 + mz*p.AirCpJKgK/2
		if c.thermal {
			sumHalf += kbc / 2
		}
		jac.Set(row, c.idxX(k+1), 1+rowScale*sumHalf)
		if xIsVar {
			jac.Set(row, c.idxX(k), -1+rowScale*sumHalf)
		}
		jac.Set(row, c.idxTs(k), -rowScale*mz*p.AirCpJKgK)
		jac.Set(row, c.idxMz(k), -rowScale*p.AirCpJKgK*(ts-xbar))
		if c.thermal {
			jac.Set(row, c.idxTb(k+1), -rowScale*kbc/2)
			if k >= 1 {
				jac.Set(row, c.idxTb(k), -rowScale*kbc/2)
			}
		}

		// Heater power definition row (kW).
		r := row + 1
		jac.Set(r, c.idxPh(k), 1)
		jac.Set(r, c.idxTs(k), -h.ah[k]*mz/1000)
		jac.Set(r, c.idxTc(k), h.ah[k]*mz/1000)
		jac.Set(r, c.idxMz(k), -h.ah[k]*(ts-tc)/1000)

		// Cooler power definition row (kW).
		r = row + 2
		tm := (1-dr)*h.outsideC[k] + dr*xk
		jac.Set(r, c.idxPc(k), 1)
		jac.Set(r, c.idxTc(k), ac*mz/1000)
		jac.Set(r, c.idxDr(k), -ac*mz*(xk-h.outsideC[k])/1000)
		jac.Set(r, c.idxMz(k), -ac*(tm-tc)/1000)
		if xIsVar {
			jac.Set(r, c.idxX(k), -ac*mz*dr/1000)
		}

		// Pack dynamics row (thermal only, kelvins).
		if c.thermal {
			r = row + 3
			scale := h.dt / net.PackHeatCapJK
			half := (c.kabEffWK + kbc) / 2
			jac.Set(r, c.idxTb(k+1), 1+scale*half)
			if k >= 1 {
				jac.Set(r, c.idxTb(k), -1+scale*half)
			}
			jac.Set(r, c.idxX(k+1), -scale*kbc/2)
			if xIsVar {
				jac.Set(r, c.idxX(k), -scale*kbc/2)
			}
			jac.Set(r, c.idxBh(k), -scale*1000*net.HeaterEff)
			jac.Set(r, c.idxBc(k), scale*1000*net.ChillerCOP)
		}
	}
}

// Inequality constraints, 14 per step k:
//
//	0: mz ≥ mz_lo          (C1)     1: mz ≤ mz_hi∧fan  (C1/C10)
//	2: x_{k+1} ≥ lo_k      (C2)     3: x_{k+1} ≤ hi_k  (C2)
//	4: Tc ≤ Ts             (C3)     5: Tc ≤ Tm         (C4)
//	6: Tc ≥ floor_k        (C5)     7: Ts ≤ Th_max     (C6)
//	8: dr ≥ 0              (C7)     9: dr ≤ dr_max     (C7)
//	10: Ph ≤ Ph_max        (C8)    11: Pc ≤ Pc_max     (C9)
//	12: Ph ≥ 0                     13: Pc ≥ 0
//
// Thermal co-scheduling appends 4 battery-branch rows per step:
//
//	14: Pbh ≤ Pbh_max      15: Pbc ≤ Pbc_max
//	16: Pbh ≥ 0            17: Pbc ≥ 0
const (
	ineqPerStep        = 14
	thermalIneqPerStep = ineqPerStep + 4
)

func (c *Controller) maxFlow() float64 {
	p := c.cfg.Cabin
	return math.Min(p.MaxAirFlowKgS, math.Sqrt(p.MaxFanPowerW/p.FanCoeffW))
}

func (c *Controller) inequalities(z []float64, h *horizonData, out []float64) {
	p := c.cfg.Cabin
	mzHi := c.maxFlow()
	for k := 0; k < h.n; k++ {
		ts := z[c.idxTs(k)]
		tc := z[c.idxTc(k)]
		dr := z[c.idxDr(k)]
		mz := z[c.idxMz(k)]
		xhat, _ := c.stateAt(z, h, k)
		tm := (1-dr)*h.outsideC[k] + dr*xhat
		o := out[k*c.ni:]
		o[0] = p.MinAirFlowKgS - mz
		o[1] = mz - mzHi
		o[2] = h.comfortLo[k] - z[c.idxX(k+1)]
		o[3] = z[c.idxX(k+1)] - h.comfortHi[k]
		o[4] = tc - ts
		o[5] = tc - tm
		o[6] = h.coilFloorC[k] - tc
		o[7] = ts - p.MaxHeaterTempC
		o[8] = -dr
		o[9] = dr - p.MaxRecirc
		o[10] = z[c.idxPh(k)] - p.MaxHeaterPowerW/1000
		o[11] = z[c.idxPc(k)] - p.MaxCoolerPowerW/1000
		o[12] = -z[c.idxPh(k)]
		o[13] = -z[c.idxPc(k)]
		if c.thermal {
			net := &c.cfg.Thermal.Network
			o[14] = z[c.idxBh(k)] - net.MaxHeaterW/1000
			o[15] = z[c.idxBc(k)] - net.MaxChillerW/1000
			o[16] = -z[c.idxBh(k)]
			o[17] = -z[c.idxBc(k)]
		}
	}
}

func (c *Controller) inequalitiesJac(z []float64, h *horizonData, jac *mat.Dense) {
	for k := 0; k < h.n; k++ {
		dr := z[c.idxDr(k)]
		xhat, xIsVar := c.stateAt(z, h, k)
		r := k * c.ni
		jac.Set(r+0, c.idxMz(k), -1)
		jac.Set(r+1, c.idxMz(k), 1)
		jac.Set(r+2, c.idxX(k+1), -1)
		jac.Set(r+3, c.idxX(k+1), 1)
		jac.Set(r+4, c.idxTc(k), 1)
		jac.Set(r+4, c.idxTs(k), -1)
		jac.Set(r+5, c.idxTc(k), 1)
		jac.Set(r+5, c.idxDr(k), h.outsideC[k]-xhat)
		if xIsVar {
			jac.Set(r+5, c.idxX(k), -dr)
		}
		jac.Set(r+6, c.idxTc(k), -1)
		jac.Set(r+7, c.idxTs(k), 1)
		jac.Set(r+8, c.idxDr(k), -1)
		jac.Set(r+9, c.idxDr(k), 1)
		jac.Set(r+10, c.idxPh(k), 1)
		jac.Set(r+11, c.idxPc(k), 1)
		jac.Set(r+12, c.idxPh(k), -1)
		jac.Set(r+13, c.idxPc(k), -1)
		if c.thermal {
			jac.Set(r+14, c.idxBh(k), 1)
			jac.Set(r+15, c.idxBc(k), 1)
			jac.Set(r+16, c.idxBh(k), -1)
			jac.Set(r+17, c.idxBc(k), -1)
		}
	}
}

// initialGuess builds a feasible-ish starting iterate into z: hold the
// current temperature and ventilate. Every entry of z is written.
func (c *Controller) initialGuess(h *horizonData, z []float64) {
	p := c.cfg.Cabin
	ac := p.AirCpJKgK / p.EtaCool
	for k := 1; k <= h.n; k++ {
		z[c.idxX(k)] = h.tz0
	}
	for k := 0; k < h.n; k++ {
		dr := 0.5
		tm := (1-dr)*h.outsideC[k] + dr*h.tz0
		tc := math.Max(h.coilFloorC[k], math.Min(tm, h.targetC))
		ts := units.Clamp(h.targetC, tc, p.MaxHeaterTempC)
		mz := p.MinAirFlowKgS + 0.02
		z[c.idxTs(k)] = ts
		z[c.idxTc(k)] = tc
		z[c.idxDr(k)] = dr
		z[c.idxMz(k)] = mz
		z[c.idxPh(k)] = math.Max(0, h.ah[k]*mz*(ts-tc)/1000)
		z[c.idxPc(k)] = math.Max(0, ac*mz*(tm-tc)/1000)
	}
	if c.thermal {
		// Hold the measured pack temperature and pre-seed the heater when
		// the pack starts below the band — in deep cold full heat is near
		// optimal and the seed saves SQP iterations.
		net := &c.cfg.Thermal.Network
		bh := 0.0
		if h.tb0 < c.cfg.Thermal.BandLoC {
			bh = net.MaxHeaterW / 1000
		}
		for k := 0; k < h.n; k++ {
			z[c.idxBh(k)] = bh
			z[c.idxBc(k)] = 0
			z[c.idxTb(k+1)] = h.tb0
		}
	}
}

// shiftWarmStart advances the previous solution by one step into z,
// which must not alias prev. The stage-major layout makes the shift two
// block copies: stages 1..n−1 slide down one slot (inputs, coil powers,
// and the next-state variable all travel together), and the final stage
// repeats the previous plan's last stage.
func (c *Controller) shiftWarmStart(prev []float64, h *horizonData, z []float64) {
	last := c.sv * (h.n - 1)
	copy(z[:last], prev[c.sv:])
	copy(z[last:], prev[last:])
}

// Decide implements control.Controller: it solves the horizon problem and
// applies the first control move.
func (c *Controller) Decide(ctx control.StepContext) cabin.Inputs {
	h := c.buildHorizon(ctx)
	prob := &c.prob

	z0 := c.z0
	if c.havePrev {
		c.shiftWarmStart(c.prevZ, h, z0)
	} else {
		c.initialGuess(h, z0)
	}

	// A per-step budget (supervisor watchdog or injected solver-budget
	// fault) tightens the configured solver options for this call only.
	opt := c.cfg.SQP
	opt.Work = c.sqpWork
	if ctx.SolverIterBudget > 0 && (opt.HardIterCap <= 0 || ctx.SolverIterBudget < opt.HardIterCap) {
		opt.HardIterCap = ctx.SolverIterBudget
	}

	var t0 time.Time
	if c.telRTF != nil {
		t0 = time.Now()
	}
	res, err := sqp.Solve(prob, z0, opt)
	if c.telRTF != nil {
		c.telRTF.Set(time.Since(t0).Seconds() / c.cfg.Dt)
	}
	c.solves++
	c.lastSolve = control.SolveInfo{Status: "fallback"}
	if res != nil {
		c.lastSolve = control.SolveInfo{
			Iterations:   res.Iterations,
			QPIterations: res.QPIterations,
			Status:       res.Status.String(),
		}
		c.totalSQPIters += res.Iterations
		switch res.Status {
		case sqp.Converged:
			c.converged++
		case sqp.Stalled:
			c.stalled++
		case sqp.Failed:
			c.failed++
		case sqp.BudgetExceeded:
			c.budget++
		}
	}

	// A budget-truncated iterate is still usable when finite: it is the
	// warm-started previous plan improved for as many iterations as the
	// budget allowed. It is reported unhealthy either way.
	budgeted := errors.Is(err, sqp.ErrBudgetExceeded)
	var in cabin.Inputs
	if (err != nil && !budgeted) || res == nil || !mat.AllFinite(res.X) {
		// Optimizer broke down: fall back to a safe ventilation move and
		// drop the warm start. The termination-status switch above
		// already counted solves that returned a result; only a nil
		// result (never classified) is counted here.
		if res == nil {
			c.failed++
		}
		c.havePrev = false
		if err == nil {
			err = errors.New("core: non-finite solver iterate")
		}
		c.lastErr = fmt.Errorf("core: safe-ventilation fallback: %w", err)
		c.lastSolve.Status = "fallback"
		c.lastStructured = false
		mixFallback := c.model.MixTemp(ctx.OutsideC, ctx.CabinTempC, 0.5)
		in = cabin.Inputs{SupplyTempC: mixFallback, CoilTempC: mixFallback, Recirc: 0.5, AirFlowKgS: c.cfg.Cabin.MinAirFlowKgS}
		if c.thermal && ctx.PackThermal {
			// Keep the pack protected through optimizer breakdowns with the
			// same thermostatic rule the ladder baselines use.
			if ctx.PackTempC < control.BattHeatOnC {
				in.BattHeatW = control.BattHeatCmdW
			} else if ctx.PackTempC > control.BattChillOnC {
				in.BattChillW = control.BattChillCmdW
			}
		}
	} else {
		// res.X aliases the SQP workspace (overwritten by the next solve),
		// so the warm start keeps its own copy.
		copy(c.prevZ, res.X)
		c.havePrev = true
		c.lastErr = nil
		if budgeted {
			c.lastErr = err
		}
		in = cabin.Inputs{
			SupplyTempC: res.X[c.idxTs(0)],
			CoilTempC:   res.X[c.idxTc(0)],
			Recirc:      res.X[c.idxDr(0)],
			AirFlowKgS:  res.X[c.idxMz(0)],
		}
		if c.thermal {
			in.BattHeatW = 1000 * math.Max(0, res.X[c.idxBh(0)])
			in.BattChillW = 1000 * math.Max(0, res.X[c.idxBc(0)])
		}
		c.lastStructured = res.Structured
	}
	if c.telIters != nil {
		c.telIters.Observe(float64(c.lastSolve.Iterations))
		c.telQPIters.Observe(float64(c.lastSolve.QPIterations))
		c.telSolves[c.lastSolve.Status].Inc()
	}
	// Battery-branch complementarity snap (mirror of the coil snap below):
	// a finite-tolerance solve can leave both the pack heater and chiller
	// active — often when the SoC-balancing term locally rewards drawing
	// power. Cancelling the smaller branch against the net pack heat keeps
	// the planned pack trajectory while strictly reducing electrical draw,
	// so the emitted move is never worse than the optimizer's.
	if c.thermal && in.BattHeatW > 0 && in.BattChillW > 0 {
		net := &c.cfg.Thermal.Network
		heat := net.HeaterEff*in.BattHeatW - net.ChillerCOP*in.BattChillW
		if heat >= 0 {
			in.BattHeatW, in.BattChillW = heat/net.HeaterEff, 0
		} else {
			in.BattHeatW, in.BattChillW = 0, -heat/net.ChillerCOP
		}
	}
	out, mix := c.model.ClampForEnvironment(in, ctx.OutsideC, ctx.CabinTempC)
	// Exact heater/cooler complementarity on the emitted move: the
	// finite-tolerance solve drives min(Ph, Pc) toward zero but can leave
	// a few watts of the opposite coil active, which the plant would
	// dutifully burn. Raising the coil temperature to min(Ts, Tm) keeps
	// the supply temperature — and therefore the cabin trajectory —
	// exactly as planned while strictly reducing coil power, so the
	// emitted move is never worse than the optimizer's.
	if pw := c.model.PowersFor(out, mix); pw.HeaterW > 0 && pw.CoolerW > 0 {
		out.CoilTempC = math.Min(out.SupplyTempC, mix)
	}
	return out
}

// PredictedPlan exposes the optimizer's current plan (cabin temperatures
// x_1..x_N) for analysis and the Fig. 6 precool illustration. It returns
// nil before the first Decide call.
func (c *Controller) PredictedPlan() []float64 {
	if !c.havePrev {
		return nil
	}
	plan := make([]float64, c.cfg.Horizon)
	for k := 1; k <= c.cfg.Horizon; k++ {
		plan[k-1] = c.prevZ[c.idxX(k)]
	}
	return plan
}
