package core

import (
	"testing"

	"evclimate/internal/control"
)

func steadyCtx() control.StepContext {
	return control.StepContext{
		Dt: 5, CabinTempC: 25, OutsideC: 35, SolarW: 400,
		MotorPowerW: 10e3, SoC: 85, TargetC: 24,
		ComfortLowC: 21, ComfortHighC: 27,
	}
}

// Steady-state Decide runs on the controller's solver arena: the SQP
// workspace, horizon buffers, warm-start vector and cost scratch are all
// allocated once in New. Before the arena existed a single Decide
// performed ~24,000 allocations; the pin below leaves slack only for
// incidental runtime noise, far beyond the required ≥90% reduction.
func TestDecideSteadyStateAllocationFree(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := steadyCtx()
	for i := 0; i < 5; i++ { // reach warm-started steady state
		c.Decide(ctx)
	}
	allocs := testing.AllocsPerRun(20, func() { c.Decide(ctx) })
	if allocs > 8 {
		t.Fatalf("steady-state Decide allocates %v objects/op, want ≤ 8 (baseline before the solver arena: ~24000)", allocs)
	}
}

// The warm start must survive workspace reuse: res.X aliases the SQP
// workspace, so Decide keeps its own copy. A corrupted copy would show
// up as a different second-step decision.
func TestWarmStartSurvivesWorkspaceReuse(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := steadyCtx()
	for i := 0; i < 3; i++ {
		ina := a.Decide(ctx)
		inb := b.Decide(ctx)
		if ina != inb {
			t.Fatalf("step %d: two identical controllers diverged: %+v vs %+v", i, ina, inb)
		}
	}
	// Reset drops the warm start; the next decision must match a fresh
	// controller's first decision.
	a.Reset()
	fresh, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := a.Decide(ctx), fresh.Decide(ctx); got != want {
		t.Fatalf("post-Reset decision %+v differs from fresh controller's %+v", got, want)
	}
	if a.PredictedPlan() == nil {
		t.Fatal("PredictedPlan nil after a successful post-Reset Decide")
	}
}
