package core

import (
	"errors"

	"evclimate/internal/thermal"
)

// ThermalOptions extends the MPC with cold-climate battery-thermal
// co-scheduling: the horizon NLP gains a pack-temperature state per
// stage, battery heater/chiller decision channels, a heat-pump-aware
// heater power model, and a soft pack-temperature comfort band in the
// cost. The extension preserves the stage structure — each added
// constraint row touches only adjacent stages — so the block-tridiagonal
// KKT backend of internal/qp keeps engaging at the enlarged decision
// stride (the dense path remains the golden reference).
//
// The cost mapping to the deliverable metrics: cabin comfort is the
// paper's w3 term; ΔSoH is the existing SoC-deviation term (cycle
// stress) plus the pack band, which prices the U-shaped
// battery.CycleStressFactor — cold cycling below BandLoC means lithium
// plating, hot above BandHiC means SEI growth; range is the w1 power
// term, which now sees the true heat-pump electrical draw and the
// battery-branch loads.
type ThermalOptions struct {
	// Enabled switches the co-scheduling extension on. Disabled (the
	// zero value), the controller is bit-identical to the paper's
	// cabin-only MPC.
	Enabled bool
	// Network is the prediction model of the cabin↔pack↔coolant↔ambient
	// thermal network (the plant side lives in internal/thermal; the MPC
	// folds the coolant node into an effective pack↔ambient conductance
	// so the pack stays one state per stage).
	Network thermal.NetworkParams
	// HeatPump is the COP-vs-ambient heating model: the per-stage heater
	// power equality uses COP(T_amb,k), or the PTC efficiency below the
	// cutoff.
	HeatPump thermal.HeatPumpParams
	// BandLoC and BandHiC bound the soft pack-temperature comfort band
	// (defaults 10 / 35 °C); BandWeight prices quadratic excursions
	// outside it (default 0.05 per °C²·step).
	BandLoC, BandHiC float64
	BandWeight       float64
}

// DefaultThermalOptions returns the enabled co-scheduling configuration
// used in the cold-climate experiments.
func DefaultThermalOptions() ThermalOptions {
	return ThermalOptions{
		Enabled:    true,
		Network:    thermal.DefaultNetwork(),
		HeatPump:   thermal.DefaultHeatPump(),
		BandLoC:    10,
		BandHiC:    35,
		BandWeight: 0.05,
	}
}

// validate fills defaults and reports invalid thermal options.
func (t *ThermalOptions) validate() error {
	if !t.Enabled {
		return nil
	}
	if err := t.Network.Validate(); err != nil {
		return err
	}
	if err := t.HeatPump.Validate(); err != nil {
		return err
	}
	if t.BandLoC == 0 && t.BandHiC == 0 {
		t.BandLoC, t.BandHiC = 10, 35
	}
	if t.BandWeight == 0 {
		t.BandWeight = 0.05
	}
	if t.BandWeight < 0 {
		return errors.New("core: pack band weight must be nonnegative")
	}
	if t.BandHiC <= t.BandLoC {
		return errors.New("core: pack temperature band must satisfy lo < hi")
	}
	return nil
}
