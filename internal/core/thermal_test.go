package core

import (
	"math"
	"testing"

	"evclimate/internal/control"
	"evclimate/internal/mat"
	"evclimate/internal/qp"
)

// thermalTestConfig is a cold-climate co-scheduling configuration shared
// by the tests below.
func thermalTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Thermal = DefaultThermalOptions()
	return cfg
}

// coldCtx is a deep-cold control step: −20 °C soak, cabin and pack at
// ambient, heating demanded.
func thermColdCtx(t float64) control.StepContext {
	return control.StepContext{
		Time:         t,
		Dt:           5,
		CabinTempC:   -20,
		OutsideC:     -20,
		SolarW:       0,
		MotorPowerW:  8e3,
		SoC:          90,
		TargetC:      22,
		ComfortLowC:  19,
		ComfortHighC: 25,
		PackTempC:    -20,
		PackThermal:  true,
	}
}

func TestThermalLayout(t *testing.T) {
	c, err := New(thermalTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := c.cfg.Horizon
	if got, want := c.nz(), thermalStageVars*n; got != want {
		t.Errorf("nz = %d, want %d", got, want)
	}
	if c.prob.MEq != 4*n || c.prob.MIneq != thermalIneqPerStep*n {
		t.Errorf("problem rows MEq=%d MIneq=%d, want %d/%d", c.prob.MEq, c.prob.MIneq, 4*n, thermalIneqPerStep*n)
	}
	if c.prob.Stages == nil {
		t.Fatal("thermal problem lost its stage structure")
	}
	// The legacy layout must be untouched by the thermal code path.
	legacy, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := legacy.nz(), stageVars*legacy.cfg.Horizon; got != want {
		t.Errorf("legacy nz = %d, want %d", got, want)
	}
	if legacy.Name() != "Battery Lifetime-aware" || c.Name() != "Thermal Co-scheduling" {
		t.Errorf("names: legacy %q, thermal %q", legacy.Name(), c.Name())
	}
}

// TestThermalColdSolve checks the co-scheduling controller's first move in
// a −20 °C soak: it must heat the cabin, command the battery heater (the
// pack sits far below the band), and never command the chiller.
func TestThermalColdSolve(t *testing.T) {
	c, err := New(thermalTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := c.Decide(thermColdCtx(0))
	if c.lastErr != nil {
		t.Fatalf("cold solve fell back: %v", c.lastErr)
	}
	if in.SupplyTempC <= in.CoilTempC-1e-9 {
		t.Errorf("no heating at −20 °C: supply %.2f, coil %.2f", in.SupplyTempC, in.CoilTempC)
	}
	if in.BattHeatW <= 0 {
		t.Errorf("pack at −20 °C with band floor %v °C but battery heater off", c.cfg.Thermal.BandLoC)
	}
	if in.BattHeatW > c.cfg.Thermal.Network.MaxHeaterW+1e-6 {
		t.Errorf("battery heater %v W exceeds limit %v", in.BattHeatW, c.cfg.Thermal.Network.MaxHeaterW)
	}
	if in.BattChillW != 0 {
		t.Errorf("chiller %v W commanded in deep cold", in.BattChillW)
	}
	if !c.Structured() {
		t.Error("cold solve did not stay on the structured QP backend")
	}
	// The planned pack trajectory must warm monotonically-ish toward the
	// band: final planned Tb above the initial.
	if tbN := c.prevZ[c.idxTb(c.cfg.Horizon)]; tbN <= -20 {
		t.Errorf("planned terminal pack temperature %v °C did not rise", tbN)
	}
}

// TestStructuredVsDenseEquivalence is the acceptance check for the
// enlarged stage stride: the block-tridiagonal KKT backend and the dense
// reference must solve the extended stage QP subproblem to the same
// (unique, strictly convex) solution, and the structured path must
// actually engage. The comparison is at the QP level because the full
// cold-climate NLP has a weakly determined optimum (heating now vs one
// step later costs nearly the same), so near-optimal SQP iterates differ
// legitimately between backends.
func TestStructuredVsDenseEquivalence(t *testing.T) {
	c, err := New(thermalTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := c.buildHorizon(thermColdCtx(0))
	n, meq, min := c.nz(), c.prob.MEq, c.prob.MIneq

	// The first SQP subproblem: identity Hessian seed, linearized
	// constraints at the initial guess.
	z0 := make([]float64, n)
	c.initialGuess(h, z0)
	g := make([]float64, n)
	c.gradient(z0, h, g)
	// The SQP's own Hessian seed (scaled identity, 1 + ‖g‖∞) keeps the
	// subproblem representative of what the backends actually solve.
	hScale := 1.0
	for _, v := range g {
		if math.Abs(v) > hScale {
			hScale = math.Abs(v)
		}
	}
	H := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		H.Set(i, i, 1+hScale)
	}
	aeq := mat.NewDense(meq, n)
	c.equalitiesJac(z0, h, aeq)
	beq := make([]float64, meq)
	c.equalities(z0, h, beq)
	ain := mat.NewDense(min, n)
	c.inequalitiesJac(z0, h, ain)
	bin := make([]float64, min)
	c.inequalities(z0, h, bin)
	for i := range beq {
		beq[i] = -beq[i]
	}
	for i := range bin {
		bin[i] = -bin[i]
	}
	prob := &qp.Problem{H: H, C: g, Aeq: aeq, Beq: beq, Ain: ain, Bin: bin, Stages: c.horizonStructure()}

	rs, err := qp.Solve(prob, qp.Options{})
	if err != nil {
		t.Fatalf("structured solve: %v", err)
	}
	rd, err := qp.Solve(prob, qp.Options{Backend: qp.BackendDense})
	if err != nil {
		t.Fatalf("dense solve: %v", err)
	}
	if !rs.Structured {
		t.Fatal("structured backend did not engage on the extended (sv=10) stage problem")
	}
	if rd.Structured {
		t.Fatal("dense-forced solve reported structured")
	}
	if rs.Status != qp.Optimal || rd.Status != qp.Optimal {
		t.Fatalf("statuses: structured %v, dense %v", rs.Status, rd.Status)
	}
	for i := range rs.X {
		if math.Abs(rs.X[i]-rd.X[i]) > 1e-5*(1+math.Abs(rd.X[i])) {
			t.Errorf("x[%d]: structured %v vs dense %v", i, rs.X[i], rd.X[i])
		}
	}
	if math.Abs(rs.Objective-rd.Objective) > 1e-6*(1+math.Abs(rd.Objective)) {
		t.Errorf("objectives: structured %v vs dense %v", rs.Objective, rd.Objective)
	}
}

// TestThermalStructuredEngages runs a receding-horizon warm-up at a mild
// cold ambient and checks the co-scheduling controller keeps using the
// structured backend across warm-started solves.
func TestThermalStructuredEngages(t *testing.T) {
	c, err := New(thermalTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	structured := 0
	for i := 0; i < 6; i++ {
		ctx := thermColdCtx(float64(i) * 5)
		ctx.OutsideC = 0
		ctx.CabinTempC = 5 + 1.5*float64(i)
		ctx.PackTempC = 0.8 * float64(i)
		ctx.SoC = 90 - 0.1*float64(i)
		c.Decide(ctx)
		if c.lastErr != nil {
			t.Fatalf("step %d fell back: %v", i, c.lastErr)
		}
		if c.Structured() {
			structured++
		}
	}
	// The first cold-start solve may demote mid-solve when a sharpening
	// barrier costs a stage block its quasi-definiteness; the warm-started
	// steady state must stay structured.
	if structured < 4 {
		t.Errorf("structured backend engaged on only %d/6 solves", structured)
	}
}

// TestThermalFallbackThermostat pins the safe-ventilation fallback's
// battery branch to the ladder thermostatic rule.
func TestThermalFallbackThermostat(t *testing.T) {
	cfg := thermalTestConfig()
	cfg.SQP.HardIterCap = 0
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := thermColdCtx(0)
	ctx.SolverIterBudget = -1 // ignored (non-positive)
	// Force a breakdown: NaN measurement poisons the horizon so the solver
	// returns non-finite iterates.
	ctx.CabinTempC = math.NaN()
	in := c.Decide(ctx)
	if c.lastErr == nil {
		t.Fatal("expected safe-ventilation fallback")
	}
	if in.BattHeatW != control.BattHeatCmdW {
		t.Errorf("fallback battery heater %v W, want thermostatic %v", in.BattHeatW, control.BattHeatCmdW)
	}
	if c.Structured() {
		t.Error("fallback must clear the structured flag")
	}
}
