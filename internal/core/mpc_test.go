package core

import (
	"math"
	"testing"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/mat"
)

func newController(t *testing.T, mutate func(*Config)) *Controller {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func hotCtx(tz float64) control.StepContext {
	return control.StepContext{
		Time: 0, Dt: 5,
		CabinTempC: tz, OutsideC: 35, SolarW: 400,
		MotorPowerW: 10e3, SoC: 85,
		TargetC: 24, ComfortLowC: 21, ComfortHighC: 27,
	}
}

func coldCtx(tz float64) control.StepContext {
	ctx := hotCtx(tz)
	ctx.OutsideC = 0
	ctx.SolarW = 0
	return ctx
}

// withForecast attaches an N-step constant forecast with a motor-power
// pattern.
func withForecast(ctx control.StepContext, motorW []float64) control.StepContext {
	n := len(motorW)
	f := control.Forecast{Dt: 5, MotorPowerW: motorW, OutsideC: make([]float64, n), SolarW: make([]float64, n)}
	for i := range f.OutsideC {
		f.OutsideC[i] = ctx.OutsideC
		f.SolarW[i] = ctx.SolarW
	}
	ctx.Forecast = f
	return ctx
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatteryVoltageV = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero voltage accepted")
	}
	cfg = DefaultConfig()
	cfg.Weights.Power = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative weight accepted")
	}
	cfg = DefaultConfig()
	cfg.Cabin.EtaCool = 5
	if _, err := New(cfg); err == nil {
		t.Error("bad cabin accepted")
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	c := newController(t, func(cfg *Config) { cfg.Horizon = 4 })
	ctx := withForecast(hotCtx(26), []float64{5e3, 20e3, 2e3, 15e3})
	h := c.buildHorizon(ctx)
	z := make([]float64, c.nz())
	c.initialGuess(h, z)
	// Perturb to a generic interior point.
	for i := range z {
		z[i] += 0.01 * float64(i%7)
	}
	grad := make([]float64, len(z))
	c.gradient(z, h, grad)
	for i := range z {
		hstep := 1e-6 * (1 + math.Abs(z[i]))
		zp := mat.CloneVec(z)
		zm := mat.CloneVec(z)
		zp[i] += hstep
		zm[i] -= hstep
		fd := (c.objective(zp, h) - c.objective(zm, h)) / (2 * hstep)
		if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, FD = %v", i, grad[i], fd)
		}
	}
}

func TestEqualitiesJacMatchesFiniteDifferences(t *testing.T) {
	c := newController(t, func(cfg *Config) { cfg.Horizon = 3 })
	ctx := hotCtx(26)
	h := c.buildHorizon(ctx)
	z := make([]float64, c.nz())
	c.initialGuess(h, z)
	for i := range z {
		z[i] += 0.013 * float64(i%5)
	}
	m := 3 * h.n
	jac := mat.NewDense(m, len(z))
	c.equalitiesJac(z, h, jac)
	base := make([]float64, m)
	pert := make([]float64, m)
	c.equalities(z, h, base)
	for j := range z {
		hstep := 1e-6 * (1 + math.Abs(z[j]))
		zp := mat.CloneVec(z)
		zp[j] += hstep
		c.equalities(zp, h, pert)
		for i := 0; i < m; i++ {
			fd := (pert[i] - base[i]) / hstep
			if math.Abs(fd-jac.At(i, j)) > 1e-3*(1+math.Abs(fd)) {
				t.Errorf("eqJac[%d][%d] = %v, FD = %v", i, j, jac.At(i, j), fd)
			}
		}
	}
}

func TestIneqJacMatchesFiniteDifferences(t *testing.T) {
	c := newController(t, func(cfg *Config) { cfg.Horizon = 3 })
	ctx := hotCtx(26)
	h := c.buildHorizon(ctx)
	z := make([]float64, c.nz())
	c.initialGuess(h, z)
	for i := range z {
		z[i] += 0.017 * float64(i%4)
	}
	m := h.n * ineqPerStep
	jac := mat.NewDense(m, len(z))
	c.inequalitiesJac(z, h, jac)
	base := make([]float64, m)
	pert := make([]float64, m)
	c.inequalities(z, h, base)
	for j := range z {
		hstep := 1e-6 * (1 + math.Abs(z[j]))
		zp := mat.CloneVec(z)
		zp[j] += hstep
		c.inequalities(zp, h, pert)
		for i := 0; i < m; i++ {
			fd := (pert[i] - base[i]) / hstep
			if math.Abs(fd-jac.At(i, j)) > 1e-3*(1+math.Abs(fd)) {
				t.Errorf("ineqJac[%d][%d] = %v, FD = %v", i, j, jac.At(i, j), fd)
			}
		}
	}
}

func TestDecideReturnsValidInputs(t *testing.T) {
	c := newController(t, nil)
	m, err := cabin.New(cabin.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []control.StepContext{hotCtx(26), hotCtx(24), coldCtx(20), coldCtx(24)} {
		in := c.Decide(ctx)
		mix := m.MixTemp(ctx.OutsideC, ctx.CabinTempC, in.Recirc)
		if err := m.CheckInputs(in, mix, 1e-6); err != nil {
			t.Errorf("ctx To=%v Tz=%v: %v", ctx.OutsideC, ctx.CabinTempC, err)
		}
	}
}

// miniLoop runs steps closed-loop Decide/plant iterations from tz0 and
// returns the final cabin temperature.
func miniLoop(t *testing.T, c *Controller, mkCtx func(float64) control.StepContext, tz0 float64, steps int) float64 {
	t.Helper()
	m, err := cabin.New(cabin.Default())
	if err != nil {
		t.Fatal(err)
	}
	tz := tz0
	for i := 0; i < steps; i++ {
		ctx := mkCtx(tz)
		in := c.Decide(ctx)
		d := m.CabinDerivative(tz, in, ctx.OutsideC, ctx.SolarW)
		tz += d * ctx.Dt
	}
	return tz
}

func TestClosedLoopCoolsHotCabin(t *testing.T) {
	c := newController(t, nil)
	// 26.5 °C cabin, hot day: 20 closed-loop steps (100 s) must move the
	// temperature clearly toward the 24 °C target.
	tz := miniLoop(t, c, hotCtx, 26.5, 20)
	if tz >= 26.0 {
		t.Errorf("cabin stayed at %.2f °C after 100 s of closed-loop cooling", tz)
	}
	if c.Stats().Failed > 0 {
		t.Errorf("solver failures: %+v", c.Stats())
	}
}

func TestClosedLoopHeatsColdCabin(t *testing.T) {
	c := newController(t, nil)
	tz := miniLoop(t, c, coldCtx, 21.5, 20)
	if tz <= 22.0 {
		t.Errorf("cabin stayed at %.2f °C after 100 s of closed-loop heating", tz)
	}
}

// TestPrecoolBehaviour is the heart of the paper (Fig. 6): with a motor
// power valley followed by a peak in the forecast, the MPC must spend
// more HVAC power during the valley than during the peak.
func TestPrecoolBehaviour(t *testing.T) {
	c := newController(t, func(cfg *Config) {
		cfg.Horizon = 8
		cfg.Weights.SoCDev = 5e4 // emphasize peak shaving for the test
		// This is a one-shot cold-start solve: disable the real-time
		// merit-stagnation exit so the schedule is fully shaped.
		cfg.SQP.MinMeritDecrease = -1
		cfg.SQP.MaxIter = 60
	})
	m, _ := cabin.New(cabin.Default())

	// Valley now, big peak from step 3 on.
	valleyThenPeak := []float64{0, 0, 0, 60e3, 60e3, 60e3, 60e3, 60e3}
	ctxValley := withForecast(hotCtx(24.5), valleyThenPeak)
	inValley := c.Decide(ctxValley)
	pwValley := m.PowersFor(inValley, m.MixTemp(35, 24.5, inValley.Recirc)).Total()

	// Peak now, valley later.
	c.Reset()
	peakThenValley := []float64{60e3, 60e3, 60e3, 0, 0, 0, 0, 0}
	ctxPeak := withForecast(hotCtx(24.5), peakThenValley)
	ctxPeak.MotorPowerW = 60e3
	inPeak := c.Decide(ctxPeak)
	pwPeak := m.PowersFor(inPeak, m.MixTemp(35, 24.5, inPeak.Recirc)).Total()

	if pwValley <= pwPeak {
		t.Errorf("no precool: HVAC %v W in valley ≤ %v W at peak", pwValley, pwPeak)
	}
}

func TestWarmStartReducesIterations(t *testing.T) {
	c := newController(t, nil)
	ctx := withForecast(hotCtx(25), []float64{10e3, 12e3, 9e3, 11e3, 10e3, 12e3, 9e3, 11e3, 10e3, 12e3, 9e3, 11e3})
	c.Decide(ctx)
	first := c.Stats().AvgSQPIters
	// Subsequent solves from the shifted warm start should be cheaper on
	// average.
	for i := 0; i < 4; i++ {
		c.Decide(ctx)
	}
	s := c.Stats()
	avgLater := (float64(s.Solves)*s.AvgSQPIters - first) / float64(s.Solves-1)
	if avgLater > first+1 {
		t.Errorf("warm start not helping: first %v iters, later avg %v", first, avgLater)
	}
	if s.Failed > 0 {
		t.Errorf("solver failures: %+v", s)
	}
}

func TestResetClearsState(t *testing.T) {
	c := newController(t, nil)
	c.Decide(hotCtx(25))
	if c.PredictedPlan() == nil {
		t.Fatal("no plan after Decide")
	}
	c.Reset()
	if c.PredictedPlan() != nil {
		t.Error("plan survived Reset")
	}
	if c.Stats().Solves != 0 {
		t.Error("stats survived Reset")
	}
}

func TestPredictedPlanWithinComfortFunnel(t *testing.T) {
	c := newController(t, nil)
	ctx := hotCtx(25)
	c.Decide(ctx)
	plan := c.PredictedPlan()
	if plan == nil {
		t.Fatal("nil plan")
	}
	for k, tz := range plan {
		if tz < ctx.ComfortLowC-0.5 || tz > ctx.ComfortHighC+0.5 {
			t.Errorf("planned Tz[%d] = %v outside comfort zone", k, tz)
		}
	}
}

func TestSoakStartFeasibleViaFunnel(t *testing.T) {
	// Starting far outside the comfort zone must not break the solver;
	// the funnel relaxes C2.
	c := newController(t, nil)
	in := c.Decide(hotCtx(35))
	m, _ := cabin.New(cabin.Default())
	d := m.CabinDerivative(35, in, 35, 400)
	if d >= 0 {
		t.Errorf("soaked cabin not being cooled: dTz/dt = %v", d)
	}
	if c.Stats().Failed > 0 {
		t.Errorf("solver failed on soak start: %+v", c.Stats())
	}
}

func TestHigherPowerWeightLowersConsumption(t *testing.T) {
	m, _ := cabin.New(cabin.Default())
	frugal := newController(t, func(cfg *Config) { cfg.Weights.Power = 5e-3; cfg.Weights.Comfort = 0.05 })
	comfy := newController(t, func(cfg *Config) { cfg.Weights.Power = 1e-6; cfg.Weights.Comfort = 5 })
	ctx := hotCtx(26)
	inFrugal := frugal.Decide(ctx)
	inComfy := comfy.Decide(ctx)
	pF := m.PowersFor(inFrugal, m.MixTemp(35, 26, inFrugal.Recirc)).Total()
	pC := m.PowersFor(inComfy, m.MixTemp(35, 26, inComfy.Recirc)).Total()
	if pF >= pC {
		t.Errorf("power weight not effective: frugal %v W ≥ comfy %v W", pF, pC)
	}
}

func TestNoForecastFallsBackToCurrentConditions(t *testing.T) {
	c := newController(t, nil)
	ctx := hotCtx(25) // no forecast attached
	h := c.buildHorizon(ctx)
	for k := 0; k < h.n; k++ {
		if h.motorW[k] != ctx.MotorPowerW || h.outsideC[k] != 35 || h.solarW[k] != 400 {
			t.Fatalf("horizon step %d not held at current conditions", k)
		}
	}
}

func TestCoilFloorTracksColdAmbient(t *testing.T) {
	c := newController(t, nil)
	h := c.buildHorizon(coldCtx(22))
	for k := 0; k < h.n; k++ {
		if h.coilFloorC[k] != 0 { // min(3 °C, 0 °C ambient)
			t.Errorf("coil floor[%d] = %v, want 0", k, h.coilFloorC[k])
		}
	}
	h = c.buildHorizon(hotCtx(26))
	for k := 0; k < h.n; k++ {
		if h.coilFloorC[k] != 3 {
			t.Errorf("hot-day coil floor[%d] = %v, want 3", k, h.coilFloorC[k])
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	c := newController(t, nil)
	for i := 0; i < 3; i++ {
		c.Decide(hotCtx(25))
	}
	s := c.Stats()
	if s.Solves != 3 {
		t.Errorf("solves = %d, want 3", s.Solves)
	}
	if s.AvgSQPIters <= 0 {
		t.Errorf("avg iters = %v", s.AvgSQPIters)
	}
}

func TestWeightPresets(t *testing.T) {
	m, err := cabin.New(cabin.Default())
	if err != nil {
		t.Fatal(err)
	}
	run := func(w Weights) (powerW float64, finalDev float64) {
		c := newController(t, func(cfg *Config) { cfg.Weights = w })
		tz := 26.0
		var energy float64
		for i := 0; i < 20; i++ {
			ctx := hotCtx(tz)
			in := c.Decide(ctx)
			mix := m.MixTemp(ctx.OutsideC, tz, in.Recirc)
			energy += m.PowersFor(in, mix).Total() * ctx.Dt
			tz += m.CabinDerivative(tz, in, ctx.OutsideC, ctx.SolarW) * ctx.Dt
		}
		return energy, tz - 24
	}
	ecoP, ecoDev := run(EconomyWeights())
	comfP, comfDev := run(ComfortWeights())
	if ecoP >= comfP {
		t.Errorf("economy preset used more energy (%v) than comfort (%v)", ecoP, comfP)
	}
	if math.Abs(comfDev) > math.Abs(ecoDev)+0.5 {
		t.Errorf("comfort preset tracked worse: dev %v vs economy %v", comfDev, ecoDev)
	}
}

func TestForecastResamplingCoarserGrid(t *testing.T) {
	// Forecast sampled at 1 s, MPC grid at 5 s: buildHorizon must pick
	// the forecast value at each grid instant.
	c := newController(t, nil)
	n := 60
	f := control.Forecast{Dt: 1, MotorPowerW: make([]float64, n), OutsideC: make([]float64, n), SolarW: make([]float64, n)}
	for i := 0; i < n; i++ {
		f.MotorPowerW[i] = float64(i) * 100
		f.OutsideC[i] = 35
	}
	ctx := hotCtx(25)
	ctx.Forecast = f
	h := c.buildHorizon(ctx)
	for k := 0; k < h.n; k++ {
		want := float64(k*5) * 100
		if h.motorW[k] != want {
			t.Errorf("motorW[%d] = %v, want %v", k, h.motorW[k], want)
		}
	}
}

func TestForecastShorterThanHorizonHoldsLast(t *testing.T) {
	c := newController(t, nil)
	ctx := withForecast(hotCtx(25), []float64{1e3, 2e3, 3e3}) // 3 steps for a 12-step horizon
	h := c.buildHorizon(ctx)
	for k := 3; k < h.n; k++ {
		if h.motorW[k] != 3e3 {
			t.Errorf("motorW[%d] = %v, want last value 3e3", k, h.motorW[k])
		}
	}
}

func TestComfortFunnelFromSoak(t *testing.T) {
	c := newController(t, nil)
	ctx := hotCtx(35) // 8 °C above the comfort ceiling
	h := c.buildHorizon(ctx)
	// The first step's upper bound must admit the current temperature...
	if h.comfortHi[0] < 34 {
		t.Errorf("comfortHi[0] = %v excludes the soaked cabin", h.comfortHi[0])
	}
	// ...and the funnel must tighten monotonically along the horizon.
	for k := 1; k < h.n; k++ {
		if h.comfortHi[k] > h.comfortHi[k-1]+1e-12 {
			t.Errorf("funnel widened at %d: %v > %v", k, h.comfortHi[k], h.comfortHi[k-1])
		}
	}
	// Inside the zone the bounds are the plain comfort limits.
	h2 := c.buildHorizon(hotCtx(24))
	for k := 0; k < h2.n; k++ {
		if h2.comfortLo[k] != 21 || h2.comfortHi[k] != 27 {
			t.Errorf("in-zone bounds[%d] = [%v, %v]", k, h2.comfortLo[k], h2.comfortHi[k])
		}
	}
}

func TestSoCTrajectoryDrainsWithPower(t *testing.T) {
	c := newController(t, nil)
	ctx := withForecast(hotCtx(25), []float64{30e3, 30e3, 30e3, 30e3, 30e3, 30e3, 30e3, 30e3, 30e3, 30e3, 30e3, 30e3})
	h := c.buildHorizon(ctx)
	z := make([]float64, c.nz())
	c.initialGuess(h, z)
	soc := c.socTrajectory(z, h)
	// Monotone decreasing under constant positive power.
	prev := h.soc0
	for k, s := range soc {
		if s >= prev {
			t.Errorf("SoC rose at step %d: %v ≥ %v", k, s, prev)
		}
		prev = s
	}
	// Magnitude: 30 kW+ for 60 s on the 24 kWh pack drains ≈ 2 %.
	drop := h.soc0 - soc[len(soc)-1]
	if drop < 1 || drop > 4 {
		t.Errorf("window SoC drop = %v %%, want 1–4", drop)
	}
}
