package core

import (
	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/telemetry"
)

// SupervisedConfig assembles the canonical degradation ladder around the
// battery lifetime-aware MPC.
type SupervisedConfig struct {
	// MPC configures the top stage (zero value → DefaultConfig).
	MPC Config
	// ShortHorizon is the fallback MPC's horizon (default max(4, N/3)).
	// The fallback also halves the SQP iteration budget: it exists to
	// keep optimizing when the full problem became too expensive or
	// unstable, not to match the full controller's quality.
	ShortHorizon int
	// Supervisor tunes the watchdog; its Cabin parameter set defaults to
	// the MPC's.
	Supervisor control.SupervisorConfig
}

// NewSupervised builds the paper controller wrapped in the full
// degradation ladder:
//
//  0. full-horizon battery lifetime-aware MPC
//  1. cold-restart MPC with a shortened horizon and halved SQP budget
//  2. fuzzy controller (no optimizer to break)
//  3. on/off thermostat safe mode (no model at all)
//
// Each demotion trades optimality for robustness; the Supervisor
// re-promotes one stage at a time after sustained clean operation.
func NewSupervised(cfg SupervisedConfig) (*control.Supervisor, error) {
	if cfg.MPC == (Config{}) {
		cfg.MPC = DefaultConfig()
	}
	// The supervisor's sink is the ladder's: each MPC stage reports its
	// solver counters under its own stage label.
	if tel := cfg.Supervisor.Telemetry; tel != nil && cfg.MPC.Telemetry == nil {
		cfg.MPC.Telemetry = telemetry.WithLabels(tel, telemetry.L("stage", "mpc-full"))
	}
	full, err := New(cfg.MPC)
	if err != nil {
		return nil, err
	}

	shortCfg := cfg.MPC
	if tel := cfg.Supervisor.Telemetry; tel != nil {
		shortCfg.Telemetry = telemetry.WithLabels(tel, telemetry.L("stage", "mpc-short"))
	}
	shortCfg.Horizon = cfg.ShortHorizon
	if shortCfg.Horizon <= 0 {
		shortCfg.Horizon = cfg.MPC.Horizon / 3
	}
	if shortCfg.Horizon < 4 {
		shortCfg.Horizon = 4
	}
	if shortCfg.SQP.MaxIter > 1 {
		shortCfg.SQP.MaxIter /= 2
	}
	short, err := New(shortCfg)
	if err != nil {
		return nil, err
	}

	model, err := cabin.New(cfg.MPC.Cabin)
	if err != nil {
		return nil, err
	}

	sup := cfg.Supervisor
	if sup.Cabin == (cabin.Params{}) {
		sup.Cabin = cfg.MPC.Cabin
	}
	return control.NewSupervisor("Supervised MPC", sup,
		control.Stage{Name: "mpc-full", Controller: full},
		control.Stage{Name: "mpc-short", Controller: short},
		control.Stage{Name: "fuzzy", Controller: control.NewFuzzy(model)},
		control.Stage{Name: "onoff-safe", Controller: control.NewOnOff(model)},
	)
}
