package core

import (
	"testing"

	"evclimate/internal/control"
	"evclimate/internal/telemetry"
)

// The controller publishes mpc_real_time_factor (solve wall time ÷
// control period) when telemetry is bound, and the gauge carries a
// plausible value after one Decide. Being wall-clock-derived it must
// stay excluded from deterministic snapshots — a resumed or re-run
// sweep's manifest cannot depend on host speed.
func TestRealTimeFactorGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.Telemetry = telemetry.NewSink(reg, nil)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Decide(control.StepContext{
		Dt: 5, CabinTempC: 25, OutsideC: 35, SolarW: 400,
		MotorPowerW: 10e3, SoC: 85, TargetC: 24,
		ComfortLowC: 21, ComfortHighC: 27,
	})
	v := reg.Gauge("mpc_real_time_factor").Value()
	if v <= 0 || v > 1 {
		t.Fatalf("mpc_real_time_factor = %v, want in (0, 1]", v)
	}
	if telemetry.DeterministicFilter("mpc_real_time_factor") {
		t.Fatal("mpc_real_time_factor not excluded by DeterministicFilter")
	}
}
