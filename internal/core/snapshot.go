package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"evclimate/internal/control"
)

// mpcState is the MPC's serializable mutable state: the warm-start buffer
// and the per-run diagnostics. The solver arena needs no capture —
// sqp.Solve re-seeds the BFGS Hessian and refills every workspace buffer
// on each call, so the warm start is the only state the next Decide
// reads. lastErr is carried as its message: supervisory layers only use
// it as an opaque soft-fault reason, and the next Decide overwrites it.
type mpcState struct {
	PrevZ    []float64 `json:"prev_z"`
	HavePrev bool      `json:"have_prev"`

	Solves        int `json:"solves"`
	Converged     int `json:"converged"`
	Stalled       int `json:"stalled"`
	Failed        int `json:"failed"`
	Budget        int `json:"budget"`
	TotalSQPIters int `json:"total_sqp_iters"`

	LastErr   string            `json:"last_err,omitempty"`
	LastSolve control.SolveInfo `json:"last_solve"`
}

// StateSnapshot implements control.Snapshotter.
func (c *Controller) StateSnapshot() (json.RawMessage, error) {
	st := mpcState{
		PrevZ:         append([]float64(nil), c.prevZ...),
		HavePrev:      c.havePrev,
		Solves:        c.solves,
		Converged:     c.converged,
		Stalled:       c.stalled,
		Failed:        c.failed,
		Budget:        c.budget,
		TotalSQPIters: c.totalSQPIters,
		LastSolve:     c.lastSolve,
	}
	if c.lastErr != nil {
		st.LastErr = c.lastErr.Error()
	}
	return json.Marshal(st)
}

// RestoreState implements control.Snapshotter. The snapshot must come
// from a controller with the same horizon (the warm-start buffer length
// pins the decision-vector size).
func (c *Controller) RestoreState(raw json.RawMessage) error {
	var st mpcState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("core: mpc state: %w", err)
	}
	if len(st.PrevZ) != len(c.prevZ) {
		return fmt.Errorf("core: mpc state has %d warm-start entries, controller expects %d (horizon mismatch)", len(st.PrevZ), len(c.prevZ))
	}
	copy(c.prevZ, st.PrevZ)
	c.havePrev = st.HavePrev
	c.solves, c.converged, c.stalled, c.failed, c.budget = st.Solves, st.Converged, st.Stalled, st.Failed, st.Budget
	c.totalSQPIters = st.TotalSQPIters
	c.lastErr = nil
	if st.LastErr != "" {
		c.lastErr = errors.New(st.LastErr)
	}
	c.lastSolve = st.LastSolve
	return nil
}
