// Package evclimate reproduces "Battery Lifetime-Aware Automotive Climate
// Control for Electric Vehicles" (Vatanparvar & Al Faruque, DAC 2015) as a
// pure-Go library: an EV co-simulation substrate (drive cycles, power
// train, cabin HVAC thermal model, battery SoC/SoH, BMS), an optimization
// stack (dense linear algebra, interior-point QP, SQP), the paper's
// battery lifetime-aware MPC climate controller, the On/Off and
// fuzzy-based baselines it is compared against, and harnesses that
// regenerate every figure and table of the paper's evaluation.
//
// Entry points:
//
//   - internal/core: the MPC climate controller (the paper's contribution)
//   - internal/sim: the closed-loop co-simulation engine and the
//     conformance invariants every controller must satisfy
//   - internal/runner: the parallel scenario-sweep engine (declarative
//     controller × cycle × environment grids, deterministic replay at any
//     worker count, per-job derived seeds, opt-in result cache)
//   - internal/experiments: Fig. 1/5/6/7/8 and Table I harnesses, all
//     executing on internal/runner
//   - cmd/evbench: regenerate the full evaluation
//   - cmd/evsim: run a single cycle/controller/ambient combination
//   - cmd/cyclegen: inspect and export drive cycles
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package evclimate
