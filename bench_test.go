// Benchmarks regenerating the paper's evaluation, one per figure/table.
//
// The figure/table benches run the same harnesses as cmd/evbench but on
// profiles truncated to benchProfileS seconds so `go test -bench=.`
// completes in minutes; run `evbench` for the full-length reproduction.
// Reported custom metrics carry the headline quantities (average HVAC
// power, ΔSoH improvement) so regressions in the *result*, not just the
// runtime, are visible.
package evclimate_test

import (
	"context"
	"runtime"
	"testing"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/experiments"
	"evclimate/internal/mat"
	"evclimate/internal/powertrain"
	"evclimate/internal/qp"
	"evclimate/internal/runner"
	"evclimate/internal/sim"
	"evclimate/internal/sqp"
)

// benchProfileS truncates drive profiles for the figure benchmarks.
const benchProfileS = 200

func benchOpts() experiments.Options {
	return experiments.Options{MaxProfileS: benchProfileS}
}

func BenchmarkFig1PowerBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1(experiments.Fig1Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// EV HVAC share at the coldest ambient (paper: up to 20 %).
			b.ReportMetric(rows[0].EVHVACPct, "EVHVAC%@-10C")
			b.ReportMetric(rows[len(rows)-1].ICEHVACPct, "ICEHVAC%@40C")
		}
	}
}

func BenchmarkFig5CabinTemperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces, err := experiments.Fig5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range traces {
				if t.Name == experiments.NameOnOff {
					b.ReportMetric(t.TemperatureRippleC(60), "OnOffRippleC")
				}
				if t.Name == experiments.NameMPC {
					b.ReportMetric(t.RMSTrackingErrC, "MPCRmsC")
				}
			}
		}
	}
}

func BenchmarkFig6Precool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			peak, valley := experiments.PeakValleyHVAC(pts)
			b.ReportMetric(valley-peak, "precoolShiftW")
		}
	}
}

func benchCycles(b *testing.B) []experiments.CycleResult {
	b.Helper()
	cycles, err := experiments.RunCycles(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return cycles
}

func BenchmarkFig7BatteryLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cycles := benchCycles(b)
		rows := experiments.Fig7(cycles)
		if i == 0 {
			// On truncated profiles the On/Off reference idles, so the
			// vs-On/Off ratio is meaningless here; report the raw MPC and
			// fuzzy degradations instead (the full ratios come from
			// evbench). Lower is better.
			var mpc, fz float64
			for _, c := range cycles {
				mpc += c.Results[experiments.NameMPC].DeltaSoH
				fz += c.Results[experiments.NameFuzzy].DeltaSoH
			}
			n := float64(len(cycles))
			b.ReportMetric(mpc/n, "MPCdSoH%")
			b.ReportMetric(fz/n, "FuzzydSoH%")
			_ = rows
		}
	}
}

func BenchmarkFig8HVACPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(benchCycles(b))
		if i == 0 {
			var mpc, fz float64
			for _, r := range rows {
				mpc += r.MPCKW
				fz += r.FuzzyKW
			}
			n := float64(len(rows))
			b.ReportMetric(mpc/n, "MPCkW")
			b.ReportMetric(fz/n, "FuzzykW")
		}
	}
}

func BenchmarkTable1AmbientAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Two representative rows (hot and cold) keep the bench tractable;
		// evbench runs all six ambients.
		rows, err := experiments.Table1(benchOpts(), []float64{35, 0})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].MPCKW, "MPCkW@35C")
			b.ReportMetric(rows[1].MPCKW, "MPCkW@0C")
		}
	}
}

// --- Component micro-benchmarks ---

func BenchmarkMPCSolveStep(b *testing.B) {
	mpc, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ctx := control.StepContext{
		Dt: 5, CabinTempC: 25, OutsideC: 35, SolarW: 400,
		MotorPowerW: 10e3, SoC: 85, TargetC: 24,
		ComfortLowC: 21, ComfortHighC: 27,
	}
	mpc.Decide(ctx) // size the solver arena; steady state is the regime of interest
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpc.Decide(ctx)
	}
}

// BenchmarkMPCSolveStepThermal is the co-scheduling counterpart of
// BenchmarkMPCSolveStep: the same steady-state solve with the battery-
// thermal extension enabled, so the enlarged per-stage decision stride
// (pack state + heater/chiller channels) is gated alongside the paper's
// cabin-only stride. The context is a deep-cold drive with a soaked
// pack — the regime where every thermal constraint row is active.
func BenchmarkMPCSolveStepThermal(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Thermal = core.DefaultThermalOptions()
	mpc, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := control.StepContext{
		Dt: 5, CabinTempC: -15, OutsideC: -20, SolarW: 0,
		MotorPowerW: 10e3, SoC: 85, TargetC: 22,
		ComfortLowC: 19, ComfortHighC: 25,
		PackTempC: -18, PackThermal: true,
	}
	mpc.Decide(ctx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpc.Decide(ctx)
	}
}

// BenchmarkQPInteriorPoint measures the cold solve path: a workspace
// pre-sized with qp.NewWorkspaceFor, no prior solve — the configuration a
// controller hits on its very first control step. Pre-sizing moves every
// buffer acquisition out of Solve, so the allocs/op column must stay at
// zero (it used to read 24 allocs / 82 KB per solve when this bench let
// Solve size a fresh arena lazily).
func BenchmarkQPInteriorPoint(b *testing.B) {
	n := 60
	h := mat.Identity(n)
	c := make([]float64, n)
	for i := range c {
		c[i] = -float64(i%7) - 1.5
	}
	ain := mat.NewDense(2*n, n)
	bin := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		ain.Set(i, i, 1)
		bin[i] = 2
		ain.Set(n+i, i, -1)
	}
	p := &qp.Problem{H: h, C: c, Ain: ain, Bin: bin}
	opt := qp.Options{Work: qp.NewWorkspaceFor(p)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qp.Solve(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQPInteriorPointWarm is the workspace-reuse counterpart of
// BenchmarkQPInteriorPoint: identical problem, but repeated solves share
// one qp.Workspace the way the SQP loop does. The B/op and allocs/op
// columns are the point — they must stay at zero.
func BenchmarkQPInteriorPointWarm(b *testing.B) {
	n := 60
	h := mat.Identity(n)
	c := make([]float64, n)
	for i := range c {
		c[i] = -float64(i%7) - 1.5
	}
	ain := mat.NewDense(2*n, n)
	bin := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		ain.Set(i, i, 1)
		bin[i] = 2
		ain.Set(n+i, i, -1)
	}
	p := &qp.Problem{H: h, C: c, Ain: ain, Bin: bin}
	opt := qp.Options{Work: qp.NewWorkspace()}
	if _, err := qp.Solve(p, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qp.Solve(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// stageBenchQP builds a stage QP with the MPC subproblem's exact shape —
// 12 stages of 7 variables, 3 equality and 14 inequality rows per stage,
// block-tridiagonal Hessian band — from deterministic pseudo-random
// data. Used by the structured-vs-dense backend pair below.
func stageBenchQP() *qp.Problem {
	const nst, nv, ne, ni = 12, 7, 3, 14
	n, meq, min := nst*nv, nst*ne, nst*ni
	val := func(i, j int) float64 { return float64((i*37+j*17)%23)/23 - 0.5 }
	h := mat.NewDense(n, n)
	for k := 0; k < nst; k++ {
		o := k * nv
		for i := 0; i < nv; i++ {
			for j := 0; j < nv; j++ {
				var acc float64
				for l := 0; l < nv; l++ {
					acc += val(o+i, l) * val(o+j, l)
				}
				if i == j {
					acc += 2
				}
				h.Set(o+i, o+j, acc)
			}
		}
		if k > 0 {
			for i := 0; i < nv; i++ {
				for j := 0; j < nv; j++ {
					v := 0.1 * val(o+i, o-nv+j)
					h.Set(o+i, o-nv+j, v)
					h.Set(o-nv+j, o+i, v)
				}
			}
		}
	}
	c := make([]float64, n)
	for i := range c {
		c[i] = val(i, i+1)
	}
	aeq := mat.NewDense(meq, n)
	beq := make([]float64, meq)
	for k := 0; k < nst; k++ {
		lo := 0
		if k > 0 {
			lo = (k - 1) * nv
		}
		for r := 0; r < ne; r++ {
			row := k*ne + r
			for j := lo; j < (k+1)*nv; j++ {
				aeq.Set(row, j, val(row, j))
			}
			beq[row] = 0.05 * val(row, 0)
		}
	}
	ain := mat.NewDense(min, n)
	bin := make([]float64, min)
	for k := 0; k < nst; k++ {
		o := k * nv
		for i := 0; i < nv; i++ {
			ain.Set(k*ni+i, o+i, 1)
			bin[k*ni+i] = 2
			ain.Set(k*ni+nv+i, o+i, -1)
			bin[k*ni+nv+i] = 2
		}
	}
	return &qp.Problem{
		H: h, C: c, Aeq: aeq, Beq: beq, Ain: ain, Bin: bin,
		Stages: qp.UniformStages(nst, nv, ne, ni),
	}
}

// BenchmarkQPStructured and BenchmarkQPStructuredDense solve the same
// MPC-shaped stage QP through the block-tridiagonal Riccati backend and
// the dense reference path; their ratio is the per-solve win of
// exploiting the horizon structure (the end-to-end controller win is
// BenchmarkMPCSolveStep's).
func BenchmarkQPStructured(b *testing.B) {
	p := stageBenchQP()
	opt := qp.Options{Work: qp.NewWorkspaceFor(p)}
	res, err := qp.Solve(p, opt)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Structured {
		b.Fatal("bench problem did not take the structured path")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qp.Solve(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQPStructuredDense(b *testing.B) {
	p := stageBenchQP()
	opt := qp.Options{Work: qp.NewWorkspaceFor(p), Backend: qp.BackendDense}
	if _, err := qp.Solve(p, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qp.Solve(p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQPSolveWarm measures a full warm SQP solve (HS71-style
// bilinear NLP with analytic-free finite-difference derivatives) through
// a reused workspace — the shape of work one MPC step performs.
func BenchmarkSQPSolveWarm(b *testing.B) {
	p := &sqp.Problem{
		N: 4,
		Objective: func(x []float64) float64 {
			return x[0]*x[3]*(x[0]+x[1]+x[2]) + x[2]
		},
		MEq: 1,
		Eq: func(x, out []float64) {
			out[0] = x[0]*x[0] + x[1]*x[1] + x[2]*x[2] + x[3]*x[3] - 40
		},
		MIneq: 9,
		Ineq: func(x, out []float64) {
			out[0] = 25 - x[0]*x[1]*x[2]*x[3]
			for i := 0; i < 4; i++ {
				out[1+i] = 1 - x[i]
				out[5+i] = x[i] - 5
			}
		},
	}
	x0 := []float64{1, 5, 5, 1}
	opt := sqp.Options{MaxIter: 200, Work: sqp.NewWorkspace()}
	if _, err := sqp.Solve(p, x0, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqp.Solve(p, x0, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUSolve120(b *testing.B) {
	n := 120
	a := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64((i*37+j*17)%23)-11)
		}
		a.Add(i, i, 100)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mat.Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLUSolveInto120 is the allocation-free counterpart of
// BenchmarkLUSolve120: the factor object and solution buffer are reused
// across iterations.
func BenchmarkLUSolveInto120(b *testing.B) {
	n := 120
	a := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64((i*37+j*17)%23)-11)
		}
		a.Add(i, i, 100)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i % 5)
	}
	x := make([]float64, n)
	var lu mat.LU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mat.FactorizeInto(&lu, a); err != nil {
			b.Fatal(err)
		}
		lu.SolveInto(rhs, x)
	}
}

func BenchmarkPowertrainCycle(b *testing.B) {
	m, err := powertrain.New(powertrain.NissanLeaf())
	if err != nil {
		b.Fatal(err)
	}
	p := drivecycle.NEDC().Profile(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PowerProfile(p)
	}
}

func BenchmarkCoSimOnOff(b *testing.B) {
	p := drivecycle.ECE15().Profile(1).WithAmbient(35).WithSolar(400)
	cfg := sim.DefaultConfig(p)
	r, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	hvac, err := cabin.New(cfg.Cabin)
	if err != nil {
		b.Fatal(err)
	}
	ctrl := control.NewOnOff(hvac)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(ctrl); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §7) ---

func BenchmarkAblateHorizon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblateHorizon(benchOpts(), []int{8, 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[1].SolveTimeMs, "ms/solve@N=20")
			b.ReportMetric(rows[1].DeltaSoH-rows[0].DeltaSoH, "dSoH(N20-N8)")
		}
	}
}

func BenchmarkAblateSoCDevWeight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblateSoCDevWeight(benchOpts(), []float64{0, 50})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// The battery-lifetime term's effect on SoC deviation
			// (negative = the w2 term flattens the trajectory).
			b.ReportMetric(rows[1].SoCDev-rows[0].SoCDev, "socDev(w2on-off)")
		}
	}
}

func BenchmarkAblateSQPBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblateSQPBudget(benchOpts(), []int{1, 30})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].RMSTrackingErrC, "rmsC@singleQP")
			b.ReportMetric(rows[1].RMSTrackingErrC, "rmsC@sqp30")
		}
	}
}

func BenchmarkAblateControlPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblateControlPeriod(benchOpts(), []float64{2, 10})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].RMSTrackingErrC, "rmsC@2s")
			b.ReportMetric(rows[1].RMSTrackingErrC, "rmsC@10s")
		}
	}
}

// sweepSpec16 is a 16-scenario grid (4 ambients × 2 solar loads × 2
// targets, On/Off thermostat) over a truncated ECE_EUDC — the workload
// for the worker-scaling benchmarks below.
func sweepSpec16() runner.Spec {
	return runner.Spec{
		Controllers: []runner.ControllerSpec{runner.OnOffSpec(1)},
		Cycles:      []runner.CycleSpec{{Name: "ECE_EUDC"}},
		Envs: []runner.Env{
			{AmbientC: 0}, {AmbientC: 0, SolarW: 400},
			{AmbientC: 15}, {AmbientC: 15, SolarW: 400},
			{AmbientC: 25}, {AmbientC: 25, SolarW: 400},
			{AmbientC: 35}, {AmbientC: 35, SolarW: 400},
		},
		Targets:     []float64{22, 26},
		MaxProfileS: benchProfileS,
	}
}

func benchSweep(b *testing.B, workers, batchSize int) {
	b.Helper()
	spec := sweepSpec16()
	for i := 0; i < b.N; i++ {
		sw, err := runner.Run(context.Background(), spec, runner.Options{Workers: workers, BatchSize: batchSize})
		if err != nil {
			b.Fatal(err)
		}
		if err := sw.FirstErr(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(16/b.Elapsed().Seconds()*float64(b.N), "scenarios/s")
}

// BenchmarkSweep16Sequential and BenchmarkSweep16Parallel measure the
// sweep engine's default path on the same 16-scenario grid with one
// worker and with one worker per CPU; their ratio is the parallel
// speedup (≈ 1 on a single-core host, approaching min(16, NumCPU)
// otherwise). The default path batches eligible jobs (Options.BatchSize
// 0 → 16-lane SoA batches), which is where single-core throughput comes
// from.
func BenchmarkSweep16Sequential(b *testing.B) { benchSweep(b, 1, 0) }

func BenchmarkSweep16Parallel(b *testing.B) { benchSweep(b, runtime.NumCPU(), 0) }

// BenchmarkSweepScalar and BenchmarkSweepBatch pin the batched SoA core
// against the per-job scalar path on the same grid at real core count;
// their ratio is the many-vehicle batching win. BenchmarkSweepBatch is
// regression-gated (Makefile bench-gate) so the sweep cannot quietly
// fall back to scalar throughput.
func BenchmarkSweepScalar(b *testing.B) { benchSweep(b, runtime.NumCPU(), -1) }

func BenchmarkSweepBatch(b *testing.B) { benchSweep(b, runtime.NumCPU(), runner.DefaultBatchSize) }
