// Yearround: the same commute, twelve months of the year. The geodata
// package plays the role of the traffic/elevation/climate databases the
// paper builds drive profiles from (Sec. II-A): procedural terrain gives
// the slopes, a seasonal/diurnal climate model gives ambient temperature
// and solar load, and a rush-hour model sets segment speeds. The
// lifetime-aware MPC is compared against On/Off across the seasons.
package main

import (
	"fmt"
	"log"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/geodata"
	"evclimate/internal/sim"
)

func main() {
	planner := &geodata.Planner{
		Terrain: &geodata.Terrain{Seed: 17, ReliefM: 150},
		Climate: &geodata.Climate{Zone: geodata.Continental},
		Traffic: &geodata.Traffic{},
	}
	commute := []geodata.Waypoint{
		{LengthKm: 1.5, FreeFlowKmh: 45, Stop: true},
		{LengthKm: 4.0, FreeFlowKmh: 70, Stop: true},
		{LengthKm: 9.0, FreeFlowKmh: 110},
		{LengthKm: 2.0, FreeFlowKmh: 40, Stop: true},
	}

	fmt.Println("Continental-climate commute, departing 08:00, by month:")
	fmt.Printf("%5s %9s %8s | %18s | %18s | %s\n",
		"month", "ambient", "solar", "On/Off kW / ΔSoH", "MPC kW / ΔSoH", "SoH gain")

	var annualOnOff, annualMPC float64
	for month := 1; month <= 12; month++ {
		route, err := planner.Plan(fmt.Sprintf("m%02d", month), commute, month, 8)
		if err != nil {
			log.Fatal(err)
		}
		profile, err := route.Profile(1)
		if err != nil {
			log.Fatal(err)
		}

		cfg := sim.DefaultConfig(profile)
		hvac, err := cabin.New(cfg.Cabin)
		if err != nil {
			log.Fatal(err)
		}
		baseRunner, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		onoff, err := baseRunner.Run(control.NewOnOff(hvac))
		if err != nil {
			log.Fatal(err)
		}

		mpcCfg := core.DefaultConfig()
		mpc, err := core.New(mpcCfg)
		if err != nil {
			log.Fatal(err)
		}
		mpcSim := cfg
		mpcSim.ControlDt = mpcCfg.Dt
		mpcSim.ForecastSteps = mpcCfg.Horizon
		mpcRunner, err := sim.New(mpcSim)
		if err != nil {
			log.Fatal(err)
		}
		aware, err := mpcRunner.Run(mpc)
		if err != nil {
			log.Fatal(err)
		}

		amb := route.Segments[0].AmbientC
		sol := route.Segments[0].SolarW
		gain := 100 * (1 - aware.DeltaSoH/onoff.DeltaSoH)
		fmt.Printf("%5d %7.1f°C %6.0f W | %7.2f / %.5f | %7.2f / %.5f | %+6.1f%%\n",
			month, amb, sol,
			onoff.AvgHVACW/1000, onoff.DeltaSoH,
			aware.AvgHVACW/1000, aware.DeltaSoH, gain)
		annualOnOff += onoff.DeltaSoH
		annualMPC += aware.DeltaSoH
	}
	fmt.Printf("\nannual SoH budget: On/Off %.4f %%, lifetime-aware %.4f %% (%.1f%% saved)\n",
		annualOnOff, annualMPC, 100*(1-annualMPC/annualOnOff))
}
