// Ambientsweep: the hot/cold-day analysis behind the paper's Table I —
// sweep the outside temperature from a freezing morning to a desert
// afternoon and watch how HVAC power, battery degradation, and the
// lifetime-aware controller's advantage change with climate.
package main

import (
	"fmt"
	"log"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/sim"
)

func main() {
	ambients := []float64{-10, 0, 10, 21, 32, 35, 43}

	fmt.Println("ECE_EUDC cycle, 24 °C target — sweep of ambient temperature")
	fmt.Printf("%8s | %21s | %21s | %s\n", "", "On/Off", "Lifetime-aware", "")
	fmt.Printf("%8s | %9s %11s | %9s %11s | %s\n",
		"ambient", "HVAC kW", "ΔSoH %", "HVAC kW", "ΔSoH %", "SoH gain")

	for _, amb := range ambients {
		solar := 400.0
		if amb < 15 {
			solar = 0 // overcast winter day
		}
		profile := drivecycle.ECEEUDC().Profile(1).WithAmbient(amb).WithSolar(solar)

		cfg := sim.DefaultConfig(profile)
		hvac, err := cabin.New(cfg.Cabin)
		if err != nil {
			log.Fatal(err)
		}
		baseRunner, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		onoff, err := baseRunner.Run(control.NewOnOff(hvac))
		if err != nil {
			log.Fatal(err)
		}

		mpcCfg := core.DefaultConfig()
		mpc, err := core.New(mpcCfg)
		if err != nil {
			log.Fatal(err)
		}
		mpcSim := cfg
		mpcSim.ControlDt = mpcCfg.Dt
		mpcSim.ForecastSteps = mpcCfg.Horizon
		mpcRunner, err := sim.New(mpcSim)
		if err != nil {
			log.Fatal(err)
		}
		aware, err := mpcRunner.Run(mpc)
		if err != nil {
			log.Fatal(err)
		}

		gain := 100 * (1 - aware.DeltaSoH/onoff.DeltaSoH)
		fmt.Printf("%5.0f °C | %9.2f %11.5f | %9.2f %11.5f | %+7.1f%%\n",
			amb, onoff.AvgHVACW/1000, onoff.DeltaSoH,
			aware.AvgHVACW/1000, aware.DeltaSoH, gain)
	}
	fmt.Println("\nThe gain concentrates where the HVAC load is heavy (paper Table I:")
	fmt.Println("\"in the conditions when the HVAC power consumption is more considerable,")
	fmt.Println("our methodology demonstrates more improvement\").")
}
