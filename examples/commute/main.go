// Commute: build a realistic GPS-style route (suburb → highway →
// downtown) with per-segment speed, slope, and weather — the drive-profile
// information the paper assumes a navigation system provides (Sec. II-A) —
// and compare all four controllers on it, including driving-range impact.
package main

import (
	"fmt"
	"log"

	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/powertrain"
	"evclimate/internal/sim"
)

func main() {
	route := &drivecycle.Route{
		Name: "morning-commute",
		Segments: []drivecycle.RouteSegment{
			// Leave the neighborhood: slow, stop signs, morning sun.
			{LengthKm: 1.2, SpeedKmh: 40, SlopePercent: 0.5, AmbientC: 31, SolarW: 350, StopAtEnd: true, StopS: 25},
			// Arterial road with one light.
			{LengthKm: 3.0, SpeedKmh: 60, SlopePercent: 0, AmbientC: 32, SolarW: 380, StopAtEnd: true, StopS: 40},
			// Highway climb over the ridge.
			{LengthKm: 6.5, SpeedKmh: 105, SlopePercent: 2.2, AmbientC: 33, SolarW: 420},
			// Highway descent (regen).
			{LengthKm: 5.0, SpeedKmh: 110, SlopePercent: -1.8, AmbientC: 34, SolarW: 430},
			// Downtown stop-and-go.
			{LengthKm: 2.2, SpeedKmh: 35, SlopePercent: 0, AmbientC: 35, SolarW: 450, StopAtEnd: true, StopS: 30},
		},
	}
	profile, err := route.Profile(1)
	if err != nil {
		log.Fatal(err)
	}
	st := profile.Stats()
	fmt.Printf("route: %.1f km, %.0f min, max %.0f km/h, %d stops\n\n",
		st.DistanceKm, st.Duration/60, st.MaxSpeedKmh, st.Stops)

	cfg := sim.DefaultConfig(profile)
	hvac, err := cabin.New(cfg.Cabin)
	if err != nil {
		log.Fatal(err)
	}
	pt, err := powertrain.New(cfg.Powertrain)
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		ctrl      control.Controller
		controlDt float64
		forecast  int
	}
	mpcCfg := core.DefaultConfig()
	mpc, err := core.New(mpcCfg)
	if err != nil {
		log.Fatal(err)
	}
	entries := []entry{
		{control.NewOnOff(hvac), 1, 0},
		{control.NewPID(hvac), 1, 0},
		{control.NewFuzzy(hvac), 1, 0},
		{mpc, mpcCfg.Dt, mpcCfg.Horizon},
	}

	fmt.Printf("%-24s %9s %9s %11s %11s %9s\n",
		"controller", "HVAC kW", "ΔSoH %", "SoC dev", "comfort", "range km")
	for _, e := range entries {
		runCfg := cfg
		runCfg.ControlDt = e.controlDt
		runCfg.ForecastSteps = e.forecast
		runner, err := sim.New(runCfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := runner.Run(e.ctrl)
		if err != nil {
			log.Fatal(err)
		}
		// Range with this controller's average HVAC draw (estimation
		// approach of [12]).
		rangeKm := pt.RangeKm(profile, 21.3, res.AvgHVACW)
		fmt.Printf("%-24s %9.2f %9.5f %11.3f %10.1f%% %9.0f\n",
			res.Controller, res.AvgHVACW/1000, res.DeltaSoH, res.SoCDev,
			100*res.ComfortViolationFrac, rangeKm)
	}
	fmt.Println("\nThe lifetime-aware controller precools before the highway climb and")
	fmt.Println("coasts through it, flattening the battery's SoC trajectory.")
}
