// Precondition: quantify cabin pre-conditioning — running the HVAC while
// the car is still plugged in, so the pull-down energy comes from the
// grid instead of the pack and the drive starts with a comfortable cabin.
// This is the stationary counterpart of the paper's precool idea: shifting
// HVAC effort to when it is cheap for the battery.
package main

import (
	"fmt"
	"log"

	"evclimate/internal/battery"
	"evclimate/internal/cabin"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/ode"
	"evclimate/internal/sim"
)

func main() {
	const (
		ambientC = 38  // desert-parking afternoon
		solarW   = 500 // car in the sun
		targetC  = 24
	)

	// Phase 1 (optional): pre-cool the soaked cabin on grid power.
	// Integrate the cabin ODE under full cooling until it reaches the
	// target (or 15 minutes pass).
	hvac, err := cabin.New(cabin.Default())
	if err != nil {
		log.Fatal(err)
	}
	in, _ := hvac.ClampForEnvironment(cabin.Inputs{
		SupplyTempC: 8, CoilTempC: 8, Recirc: 0.7, AirFlowKgS: 0.24,
	}, ambientC, ambientC)
	var gridJ float64
	tz := float64(ambientC)
	sys := func(t float64, x, dxdt []float64) {
		dxdt[0] = hvac.CabinDerivative(x[0], in, ambientC, solarW)
	}
	var precoolS float64
	for tz > targetC && precoolS < 900 {
		x, err := ode.Integrate(sys, []float64{tz}, 0, 10, 1, &ode.RK4{}, nil)
		if err != nil {
			log.Fatal(err)
		}
		tz = x[0]
		mix := hvac.MixTemp(ambientC, tz, in.Recirc)
		gridJ += hvac.PowersFor(in, mix).Total() * 10
		precoolS += 10
	}
	fmt.Printf("pre-conditioning: %.0f s on grid power, %.2f kWh, cabin %.0f → %.1f °C\n\n",
		precoolS, gridJ/3.6e6, float64(ambientC), tz)

	// Phase 2: the drive, starting either soaked or pre-conditioned.
	profile := drivecycle.UDDS().Profile(1).WithAmbient(ambientC).WithSolar(solarW)
	run := func(label string, initialCabin float64) {
		mpcCfg := core.DefaultConfig()
		mpc, err := core.New(mpcCfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg := sim.DefaultConfig(profile)
		cfg.TargetC = targetC
		cfg.InitialCabinC = initialCabin
		cfg.ControlDt = mpcCfg.Dt
		cfg.ForecastSteps = mpcCfg.Horizon
		runner, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := runner.Run(mpc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s HVAC from pack %.2f kWh   final SoC %.2f %%   ΔSoH %.5f %%   cycles-to-EOL %.0f   comfort misses %.1f %%\n",
			label, res.HVACEnergyKWh, res.FinalSoC, res.DeltaSoH,
			battery.LifetimeCycles(res.DeltaSoH), 100*res.ComfortViolationFrac)
	}
	run("soaked start", ambientC)
	run("pre-conditioned", tz)

	fmt.Println("\nPre-conditioning moves the pull-down burst off the battery entirely —")
	fmt.Println("the same SoC-flattening idea the MPC applies while driving.")
}
