// Fleet: Monte-Carlo evaluation over randomized commutes. The paper
// evaluates on five regulatory cycles; this example asks the robustness
// question instead — across many synthesized trips (random climates,
// terrains, departure times, trip shapes), how does the lifetime-aware
// controller's SoH saving distribute, and how often does it win?
package main

import (
	"flag"
	"fmt"
	"log"

	"evclimate/internal/experiments"
)

func main() {
	trips := flag.Int("trips", 10, "number of Monte-Carlo trips")
	seed := flag.Int64("seed", 1, "random seed (reproducible)")
	flag.Parse()

	summary, err := experiments.RunFleet(experiments.FleetConfig{
		Trips: *trips,
		Seed:  *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderFleet(summary))
}
