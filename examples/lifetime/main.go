// Lifetime: project battery service life under each climate controller.
// The paper's SoH model (Eq. 15) gives a per-cycle capacity fade; assuming
// one discharging/charging cycle per day (a daily commute), this example
// converts the controllers' ΔSoH into years until the pack reaches the
// 80 % end-of-life threshold, and prices the difference.
package main

import (
	"fmt"
	"log"

	"evclimate/internal/battery"
	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/sim"
)

func main() {
	// The daily commute: UDDS city cycle on a hot day — the HVAC-heavy
	// regime where climate control dominates the battery's fate.
	profile := drivecycle.UDDS().Profile(1).WithAmbient(35).WithSolar(400)
	fmt.Println("daily drive: UDDS city cycle, 35 °C, HVAC on")
	fmt.Println()

	cfg := sim.DefaultConfig(profile)
	hvac, err := cabin.New(cfg.Cabin)
	if err != nil {
		log.Fatal(err)
	}

	type runSpec struct {
		ctrl      control.Controller
		controlDt float64
		forecast  int
	}
	mpcCfg := core.DefaultConfig()
	mpc, err := core.New(mpcCfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := []runSpec{
		{control.NewOnOff(hvac), 1, 0},
		{control.NewFuzzy(hvac), 1, 0},
		{mpc, mpcCfg.Dt, mpcCfg.Horizon},
	}

	const cyclesPerYear = 365.0
	fmt.Printf("%-24s %10s %12s %11s %12s\n",
		"controller", "ΔSoH %", "cycles", "years", "HVAC kWh/day")
	var base float64
	for i, s := range specs {
		runCfg := cfg
		runCfg.ControlDt = s.controlDt
		runCfg.ForecastSteps = s.forecast
		runner, err := sim.New(runCfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := runner.Run(s.ctrl)
		if err != nil {
			log.Fatal(err)
		}
		cycles := battery.LifetimeCycles(res.DeltaSoH)
		years := cycles / cyclesPerYear
		// The compounding projection: capacity fade raises each later
		// cycle's SoC deviation, shortening life below the naive estimate.
		proj, err := battery.ProjectLifetime(battery.DefaultSoHParams(), res.SoCDev, res.SoCAvg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %10.5f %12.0f %11.1f %12.2f   (with fade feedback: %d cycles)\n",
			res.Controller, res.DeltaSoH, cycles, years, res.HVACEnergyKWh, proj.CyclesToEOL)
		if i == 0 {
			base = years
		} else if i == len(specs)-1 {
			fmt.Printf("\nOne daily cycle per day, 80%% EOL threshold: the lifetime-aware\n")
			fmt.Printf("controller extends pack life by %.1f years (%.0f%%) over On/Off.\n",
				years-base, 100*(years-base)/base)
		}
	}
}
