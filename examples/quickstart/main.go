// Quickstart: simulate one hot-day drive cycle under the conventional
// On/Off climate controller and under the paper's battery lifetime-aware
// MPC, and compare average HVAC power and battery degradation.
package main

import (
	"fmt"
	"log"

	"evclimate/internal/battery"
	"evclimate/internal/cabin"
	"evclimate/internal/control"
	"evclimate/internal/core"
	"evclimate/internal/drivecycle"
	"evclimate/internal/sim"
)

func main() {
	// A standard urban+extra-urban cycle on a 35 °C day with 400 W of
	// sun on the roof.
	profile := drivecycle.ECEEUDC().Profile(1).WithAmbient(35).WithSolar(400)

	// The plant: Nissan Leaf power train, single-zone HVAC, 24 kWh pack.
	cfg := sim.DefaultConfig(profile)
	runner, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hvac, err := cabin.New(cfg.Cabin)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: thermostat On/Off control.
	onoff, err := runner.Run(control.NewOnOff(hvac))
	if err != nil {
		log.Fatal(err)
	}

	// The paper's controller: MPC coordinating HVAC with the BMS. It
	// runs at a 5 s period with a 60 s preview of the route.
	mpcCfg := core.DefaultConfig()
	mpc, err := core.New(mpcCfg)
	if err != nil {
		log.Fatal(err)
	}
	mpcSim := cfg
	mpcSim.ControlDt = mpcCfg.Dt
	mpcSim.ForecastSteps = mpcCfg.Horizon
	mpcRunner, err := sim.New(mpcSim)
	if err != nil {
		log.Fatal(err)
	}
	aware, err := mpcRunner.Run(mpc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ECE_EUDC, 35 °C ambient, 24 °C target:")
	for _, r := range []*sim.Result{onoff, aware} {
		fmt.Printf("  %-24s avg HVAC %5.2f kW   ΔSoH %.5f %%/cycle (≈ %4.0f cycles to EOL)   comfort misses %.1f %%\n",
			r.Controller, r.AvgHVACW/1000, r.DeltaSoH,
			battery.LifetimeCycles(r.DeltaSoH), 100*r.ComfortViolationFrac)
	}
	fmt.Printf("\nHVAC power reduction: %.1f %%   battery-lifetime improvement: %.1f %%\n",
		100*(1-aware.AvgHVACW/onoff.AvgHVACW),
		100*(1-aware.DeltaSoH/onoff.DeltaSoH))
}
